lib/crcore/reference.ml: Array Cfd Coding Currency Entity List Option Porder Schema Spec Tuple Value
