lib/crcore/implication.mli: Encode Format Sat Spec Value
