lib/crcore/metrics.ml: Array Entity Fun List Schema Tuple Value
