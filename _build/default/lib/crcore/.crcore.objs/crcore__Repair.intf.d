lib/crcore/repair.mli: Cfd Currency Encode Framework Pick Schema Tuple Value
