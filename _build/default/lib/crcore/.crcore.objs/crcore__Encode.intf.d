lib/crcore/encode.mli: Cfd Coding Entity Format Sat Spec
