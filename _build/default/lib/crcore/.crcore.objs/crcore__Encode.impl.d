lib/crcore/encode.ml: Array Cfd Coding Currency Entity Format Fun Hashtbl List Sat Schema Spec String Tuple Value
