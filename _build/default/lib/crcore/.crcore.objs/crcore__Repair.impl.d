lib/crcore/repair.ml: Array Encode Entity Framework Hashtbl List Pick Printf Schema Spec Tuple Value
