lib/crcore/validity.ml: Encode Sat
