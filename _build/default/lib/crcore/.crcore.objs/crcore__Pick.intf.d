lib/crcore/pick.mli: Spec Value
