lib/crcore/metrics.mli: Entity Tuple Value
