lib/crcore/validity.mli: Encode Spec
