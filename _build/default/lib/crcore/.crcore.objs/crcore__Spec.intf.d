lib/crcore/spec.mli: Cfd Currency Entity Format Schema Tuple
