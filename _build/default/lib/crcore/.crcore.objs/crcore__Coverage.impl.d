lib/crcore/coverage.ml: Array Coding Deduce Encode Entity Fun Hashtbl List Printf Reference Schema Spec Validity Value
