lib/crcore/reference.mli: Spec Value
