lib/crcore/coverage.mli: Encode Spec Value
