lib/crcore/deduce.ml: Array Coding Encode Fun List Option Porder Queue Sat Schema
