lib/crcore/coding.mli: Cfd Entity Format Schema Value
