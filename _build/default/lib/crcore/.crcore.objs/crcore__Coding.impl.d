lib/crcore/coding.ml: Array Cfd Entity Format List Map Schema Value
