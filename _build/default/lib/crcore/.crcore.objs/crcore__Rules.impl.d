lib/crcore/rules.ml: Array Cfd Clique Coding Deduce Encode Format Fun Hashtbl List Maxsat Sat Schema Spec Value
