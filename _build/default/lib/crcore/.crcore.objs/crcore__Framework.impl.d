lib/crcore/framework.ml: Array Deduce Encode Fun List Rules Schema Spec Sys Tuple Validity Value
