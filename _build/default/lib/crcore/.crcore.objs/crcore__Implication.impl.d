lib/crcore/implication.ml: Coding Encode Entity Format List Sat Schema Spec Value
