(** The minimum coverage problem (Section IV, Theorem 4): find a small
    partial temporal order [Ot] such that the true value [T(Se ⊕ Ot)]
    exists. Σ2p-complete, so this module offers a greedy heuristic plus an
    exhaustive optimum for small instances (used as test oracle).

    The heuristic repeatedly takes an attribute whose true value is still
    open, tries each candidate value as "most current" (a set of value
    facts), keeps the first choice consistent with Φ(Se), and relies on
    deduction to propagate. Each accepted choice contributes its facts to
    [Ot]. *)

(** One accepted assertion: [value] is the most current value of [attr];
    it expands to [|adom(attr)| - 1] order facts. *)
type choice = { attr : string; value : Value.t }

type result = {
  choices : choice list;     (** the assertions, in acceptance order *)
  cost : int;                (** |Ot|: total number of order facts added *)
  resolved : Value.t option array;  (** true values after coverage *)
  complete : bool;           (** whether every attribute got a true value *)
}

(** [greedy ?mode spec] runs the heuristic. The specification must be
    valid; raises [Invalid_argument] otherwise. *)
val greedy : ?mode:Encode.mode -> Spec.t -> result

(** [optimum ?limit spec] finds a minimum-cardinality set of choices by
    exhaustive search over candidate subsets, checking each extension with
    the exhaustive reference semantics. Exponential; [None] when the
    search exceeds [limit] reference analyses (default 2000). *)
val optimum : ?limit:int -> Spec.t -> result option

(** [apply spec choices] materialises choices as order edges on
    representative tuples ([Se ⊕ Ot]). *)
val apply : Spec.t -> choice list -> Spec.t
