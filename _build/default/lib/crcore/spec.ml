type order_edge = { attr : string; lo : int; hi : int }

type t = {
  entity : Entity.t;
  orders : order_edge list;
  sigma : Currency.Constraint_ast.t list;
  gamma : Cfd.Constant_cfd.t list;
}

let make entity ~orders ~sigma ~gamma =
  let schema = Entity.schema entity in
  let n = Entity.size entity in
  List.iter
    (fun { attr; lo; hi } ->
      if not (Schema.mem schema attr) then
        invalid_arg (Printf.sprintf "Spec.make: unknown attribute %S in order" attr);
      if lo < 0 || lo >= n || hi < 0 || hi >= n then
        invalid_arg "Spec.make: order edge tuple index out of range";
      if lo = hi then invalid_arg "Spec.make: reflexive order edge")
    orders;
  List.iter
    (fun c ->
      match Currency.Constraint_ast.check_schema c schema with
      | Ok () -> ()
      | Error a ->
          invalid_arg
            (Printf.sprintf "Spec.make: currency constraint mentions unknown attribute %S" a))
    sigma;
  List.iter
    (fun c ->
      match Cfd.Constant_cfd.check_schema c schema with
      | Ok () -> ()
      | Error a ->
          invalid_arg (Printf.sprintf "Spec.make: CFD mentions unknown attribute %S" a))
    gamma;
  { entity; orders; sigma; gamma }

let schema s = Entity.schema s.entity

let size s = Entity.size s.entity

let add_order_edges s edges = make s.entity ~orders:(edges @ s.orders) ~sigma:s.sigma ~gamma:s.gamma

let extend_with_tuple s tup ~current_attrs =
  let entity = Entity.make (schema s) (Entity.tuples s.entity @ [ tup ]) in
  let new_idx = Entity.size entity - 1 in
  let fresh_edges =
    List.concat_map
      (fun attr ->
        List.filter_map
          (fun i -> if i <> new_idx then Some { attr; lo = i; hi = new_idx } else None)
          (List.init new_idx Fun.id))
      current_attrs
  in
  make entity ~orders:(fresh_edges @ s.orders) ~sigma:s.sigma ~gamma:s.gamma

let pp ppf s =
  Format.fprintf ppf "@[<v>entity:@ %a@ |Σ| = %d, |Γ| = %d, |orders| = %d@]" Entity.pp
    s.entity (List.length s.sigma) (List.length s.gamma) (List.length s.orders)
