type mode = Paper | Exact

type fact = { attr : int; lo : int; hi : int }

type source = From_order | From_constraint of int | From_cfd of int

type iconstraint = { premise : fact list; concl : fact; source : source }

type t = {
  spec : Spec.t;
  coding : Coding.t;
  mode : mode;
  units : (fact * source) list;
  implications : iconstraint list;
  vetoes : (fact list * source) list;
  cnf : Sat.Cnf.t;
  n_structural : int;
}

let var_of_fact_c coding f = Coding.var_of coding ~attr:f.attr f.lo f.hi

(* ---- instantiating currency constraints over distinct projections ----

   Instance constraints depend only on the two tuples' values at the
   attributes a constraint mentions, so we instantiate over pairs of
   distinct projections rather than pairs of tuples: same instances,
   usually far fewer pairs. *)

let projection_reps entity attr_positions =
  let seen = Hashtbl.create 16 in
  let reps = ref [] in
  List.iter
    (fun tup ->
      let key =
        String.concat "\x00"
          (List.map (fun a -> Value.to_string (Tuple.get tup a)) attr_positions)
      in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        reps := tup :: !reps
      end)
    (Entity.tuples entity);
  List.rev !reps

let instantiate_sigma spec coding =
  let schema = Spec.schema spec in
  let fact_of (name, v1, v2) =
    let attr = Schema.index schema name in
    { attr; lo = Coding.vid coding attr v1; hi = Coding.vid coding attr v2 }
  in
  let out = Hashtbl.create 256 in
  let order = ref [] in
  List.iteri
    (fun k c ->
      let positions =
        List.map (Schema.index schema) (Currency.Constraint_ast.attrs c)
      in
      let reps = projection_reps spec.Spec.entity positions in
      List.iter
        (fun s1 ->
          List.iter
            (fun s2 ->
              if not (s1 == s2) then
                match Currency.Constraint_ast.instantiate c s1 s2 with
                | None -> ()
                | Some inst ->
                    let premise =
                      List.sort_uniq compare
                        (List.map fact_of inst.Currency.Constraint_ast.prec_premises)
                    in
                    let concl = fact_of inst.Currency.Constraint_ast.conclusion in
                    let key = (premise, concl) in
                    if not (Hashtbl.mem out key) then begin
                      Hashtbl.add out key ();
                      order := { premise; concl; source = From_constraint k } :: !order
                    end)
            reps)
        reps)
    spec.Spec.sigma;
  List.rev !order

(* ---- instantiating constant CFDs ---- *)

let relevant_gamma entity gamma =
  let schema = Entity.schema entity in
  let adoms =
    Array.init (Schema.arity schema) (fun a -> Entity.active_domain entity a)
  in
  List.mapi (fun k c -> (k, c)) gamma
  |> List.filter (fun (_, (c : Cfd.Constant_cfd.t)) ->
         List.for_all
           (fun (aname, v) ->
             let a = Schema.index schema aname in
             List.exists (Value.equal v) adoms.(a))
           c.Cfd.Constant_cfd.lhs)

(* Returns the implication instances and, for CFDs whose RHS constant the
   entity never takes, the vetoed premises (ω_X → ⊥). *)
let instantiate_gamma spec coding gamma_rel =
  let schema = Spec.schema spec in
  let out = ref [] in
  let vetoes = ref [] in
  List.iter
    (fun (k, (c : Cfd.Constant_cfd.t)) ->
      let premise =
        (* ω_X: every other active-domain value sits below the pattern *)
        List.concat_map
          (fun (name, v) ->
            let attr = Schema.index schema name in
            let target = Coding.vid coding attr v in
            List.filter_map
              (fun lo -> if lo <> target then Some { attr; lo; hi = target } else None)
              (List.init (Coding.adom_size coding attr) Fun.id))
          c.Cfd.Constant_cfd.lhs
      in
      let bname, bval = c.Cfd.Constant_cfd.rhs in
      let battr = Schema.index schema bname in
      match Coding.vid_opt coding battr bval with
      | Some btarget ->
          for b = 0 to Coding.adom_size coding battr - 1 do
            if b <> btarget then
              out :=
                { premise; concl = { attr = battr; lo = b; hi = btarget }; source = From_cfd k }
                :: !out
          done
      | None ->
          (* the repair value never occurs: the pattern can never be the
             current tuple, unless the premise is already vacuous *)
          vetoes := (premise, From_cfd k) :: !vetoes)
    gamma_rel;
  (List.rev !out, List.rev !vetoes)

(* ---- units from the currency orders of It and the null-lowest rule ---- *)

let order_units spec coding =
  let schema = Spec.schema spec in
  let entity = spec.Spec.entity in
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let push f =
    if not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      out := (f, From_order) :: !out
    end
  in
  List.iter
    (fun { Spec.attr; lo; hi } ->
      let a = Schema.index schema attr in
      let v1 = Entity.value entity lo a and v2 = Entity.value entity hi a in
      if not (Value.equal v1 v2) then
        push { attr = a; lo = Coding.vid coding a v1; hi = Coding.vid coding a v2 })
    spec.Spec.orders;
  (* a null value is ranked lowest in its attribute's currency order *)
  for a = 0 to Schema.arity schema - 1 do
    let univ = Coding.universe coding a in
    Array.iteri
      (fun i v ->
        if Value.is_null v then
          Array.iteri (fun j w -> if j <> i && not (Value.is_null w) then push { attr = a; lo = i; hi = j }) univ)
      univ
  done;
  List.rev !out

let encode ?(mode = Paper) spec =
  let gamma_rel = relevant_gamma spec.Spec.entity spec.Spec.gamma in
  let coding = Coding.build spec.Spec.entity [] in
  let units = order_units spec coding in
  let gamma_imps, vetoes = instantiate_gamma spec coding gamma_rel in
  let implications = instantiate_sigma spec coding @ gamma_imps in
  (* split premise-free implications into units *)
  let extra_units, implications =
    List.partition (fun ic -> ic.premise = []) implications
  in
  let units = units @ List.map (fun ic -> (ic.concl, ic.source)) extra_units in
  let var f = var_of_fact_c coding f in
  let clauses = ref [] in
  let n_structural = ref 0 in
  List.iter (fun (f, _) -> clauses := [| Sat.Lit.pos (var f) |] :: !clauses) units;
  List.iter
    (fun ic ->
      let c =
        Array.of_list
          (Sat.Lit.pos (var ic.concl)
          :: List.map (fun f -> Sat.Lit.neg_of (var f)) ic.premise)
      in
      clauses := c :: !clauses)
    implications;
  List.iter
    (fun (premise, _) ->
      clauses := Array.of_list (List.map (fun f -> Sat.Lit.neg_of (var f)) premise) :: !clauses)
    vetoes;
  (* structural axioms per attribute *)
  let schema = Spec.schema spec in
  for a = 0 to Schema.arity schema - 1 do
    let d = Array.length (Coding.universe coding a) in
    let v lo hi = var { attr = a; lo; hi } in
    (* transitivity *)
    for i = 0 to d - 1 do
      for j = 0 to d - 1 do
        if j <> i then
          for k = 0 to d - 1 do
            if k <> i && k <> j then begin
              clauses :=
                [| Sat.Lit.neg_of (v i j); Sat.Lit.neg_of (v j k); Sat.Lit.pos (v i k) |]
                :: !clauses;
              incr n_structural
            end
          done
      done
    done;
    (* asymmetry, and totality in exact mode *)
    for i = 0 to d - 1 do
      for j = i + 1 to d - 1 do
        clauses := [| Sat.Lit.neg_of (v i j); Sat.Lit.neg_of (v j i) |] :: !clauses;
        incr n_structural;
        if mode = Exact then begin
          clauses := [| Sat.Lit.pos (v i j); Sat.Lit.pos (v j i) |] :: !clauses;
          incr n_structural
        end
      done
    done
  done;
  let cnf = Sat.Cnf.make ~nvars:(Coding.nvars coding) !clauses in
  { spec; coding; mode; units; implications; vetoes; cnf; n_structural = !n_structural }

let var_of_fact e f = var_of_fact_c e.coding f

let fact_of_var e v =
  let attr, lo, hi = Coding.decode e.coding v in
  { attr; lo; hi }

let pp_fact e ppf f =
  Format.fprintf ppf "%s: %a < %a"
    (Schema.name (Coding.schema e.coding) f.attr)
    Value.pp (Coding.value e.coding f.attr f.lo) Value.pp
    (Coding.value e.coding f.attr f.hi)
