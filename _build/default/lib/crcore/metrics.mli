(** Accuracy accounting for the experiments: precision, recall and
    F-measure over the attributes that actually needed resolving — those
    with conflicting values or a stale (single but wrong) value, exactly
    the denominator the paper uses for recall. *)

type counts = {
  relevant : int;  (** attributes with conflicts or stale values *)
  deduced : int;   (** of those, how many the method decided *)
  correct : int;   (** of the decided ones, how many match the truth *)
}

val zero : counts
val add : counts -> counts -> counts

(** [evaluate ~truth ~entity resolved] scores a resolution outcome
    ([None] = undecided) against the ground-truth tuple. *)
val evaluate : truth:Tuple.t -> entity:Entity.t -> Value.t option array -> counts

(** [evaluate_total ~truth ~entity values] scores a total assignment (the
    [Pick] baseline). *)
val evaluate_total : truth:Tuple.t -> entity:Entity.t -> Value.t array -> counts

val precision : counts -> float
val recall : counts -> float
val f_measure : counts -> float
