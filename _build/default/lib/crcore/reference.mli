(** Exhaustive reference semantics for small specifications.

    Enumerates every completion — one total order per attribute over that
    attribute's value universe — checks the currency constraints on all
    tuple pairs and the CFDs on the current tuple directly from their
    definitions (Sections II-A/II-B), and intersects the current tuples of
    the valid completions. Independent of the SAT encoding; the tests use
    it as ground truth for [IsValid], [DeduceOrder] soundness and the true
    values. *)

type result = {
  valid : bool;  (** at least one valid completion exists *)
  n_valid : int;  (** number of valid completions enumerated *)
  agreed : Value.t option array;
      (** per attribute: the value all valid completions' current tuples
          agree on, if any (meaningless when [valid = false]) *)
  true_tuple : Value.t array option;
      (** [T(Se)] when every attribute agrees *)
}

(** [analyze ?limit spec] enumerates completions; [None] when the search
    space exceeds [limit] combinations (default [2_000_000]). *)
val analyze : ?limit:int -> Spec.t -> result option

(** [implied ?limit spec ~attr v1 v2] decides [Se |= v1 ≺_attr v2] (the
    implication problem, by enumeration): the fact holds in every valid
    completion. [attr] is by name. [None] when too large or [spec]
    invalid. *)
val implied : ?limit:int -> Spec.t -> attr:string -> Value.t -> Value.t -> bool option
