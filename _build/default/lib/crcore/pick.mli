(** The traditional conflict-resolution baseline of the experiments: for
    each attribute, pick one of the occurring values.

    The paper favours [Pick] by letting it use the comparison-only
    currency constraints (those whose premise has no [≺] predicate, like
    ϕ1–ϕ3 of the NBA data): it picks uniformly among values that are not
    less current than any other under those constraints. *)

type strategy =
  | Random        (** uniform over the active domain *)
  | Favoured      (** the paper's Pick: uniform over maximal values w.r.t.
                      comparison-only constraints *)
  | Max           (** the largest value ({!Value.total_compare}) *)
  | Min           (** the smallest value *)
  | First         (** the first occurrence *)

(** [run ?seed ?strategy spec] resolves every attribute; never interacts,
    never fails. Default strategy [Favoured], the paper's baseline. *)
val run : ?seed:int -> ?strategy:strategy -> Spec.t -> Value.t array
