type counts = { relevant : int; deduced : int; correct : int }

let zero = { relevant = 0; deduced = 0; correct = 0 }

let add a b =
  {
    relevant = a.relevant + b.relevant;
    deduced = a.deduced + b.deduced;
    correct = a.correct + b.correct;
  }

let relevant_attrs ~truth ~entity =
  let schema = Entity.schema entity in
  List.filter
    (fun a ->
      Entity.has_conflict entity a
      || not (Value.equal (Entity.value entity 0 a) (Tuple.get truth a)))
    (List.init (Schema.arity schema) Fun.id)

let evaluate ~truth ~entity resolved =
  let rel = relevant_attrs ~truth ~entity in
  List.fold_left
    (fun acc a ->
      match resolved.(a) with
      | None -> { acc with relevant = acc.relevant + 1 }
      | Some v ->
          {
            relevant = acc.relevant + 1;
            deduced = acc.deduced + 1;
            correct = (acc.correct + if Value.equal v (Tuple.get truth a) then 1 else 0);
          })
    zero rel

let evaluate_total ~truth ~entity values =
  evaluate ~truth ~entity (Array.map (fun v -> Some v) values)

let precision c = if c.deduced = 0 then 0. else float_of_int c.correct /. float_of_int c.deduced

let recall c = if c.relevant = 0 then 1. else float_of_int c.correct /. float_of_int c.relevant

let f_measure c =
  let p = precision c and r = recall c in
  if p +. r = 0. then 0. else 2. *. p *. r /. (p +. r)
