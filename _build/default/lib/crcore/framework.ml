type user = Rules.suggestion -> schema:Schema.t -> (string * Value.t) list

let oracle ?(max_answers = max_int) truth suggestion ~schema =
  List.filteri (fun i _ -> i < max_answers) suggestion.Rules.attrs
  |> List.map (fun a ->
         let name = Schema.name schema a in
         (name, Tuple.get_by_name truth name))

let silent _suggestion ~schema:_ = []

type timings = { mutable validity : float; mutable deduce : float; mutable suggest : float }

type outcome = {
  resolved : Value.t option array;
  valid : bool;
  rounds : int;
  per_round_known : int list;
  timings : timings;
}

let count_known known = Array.fold_left (fun n v -> if v = None then n else n + 1) 0 known

let resolve ?(mode = Encode.Paper) ?(deduce = Deduce.deduce_order)
    ?(repair = Rules.Exact_maxsat) ?(max_rounds = 5) ~user spec =
  let timings = { validity = 0.; deduce = 0.; suggest = 0. } in
  let timed slot f =
    let t0 = Sys.time () in
    let r = f () in
    (match slot with
    | `Validity -> timings.validity <- timings.validity +. Sys.time () -. t0
    | `Deduce -> timings.deduce <- timings.deduce +. Sys.time () -. t0
    | `Suggest -> timings.suggest <- timings.suggest +. Sys.time () -. t0);
    r
  in
  let schema = Spec.schema spec in
  let arity = Schema.arity schema in
  let analyse spec =
    (* encoding is part of the validity phase, as in the paper's IsValid
       (Instantiation + ConvertToCNF + SAT) *)
    let enc = timed `Validity (fun () -> Encode.encode ~mode spec) in
    if not (timed `Validity (fun () -> Validity.check enc)) then None
    else
      let d = timed `Deduce (fun () -> deduce enc) in
      Some (d, Deduce.true_values d)
  in
  match analyse spec with
  | None ->
      {
        resolved = Array.make arity None;
        valid = false;
        rounds = 0;
        per_round_known = [ 0 ];
        timings;
      }
  | Some (d0, known0) ->
      let spec = ref spec in
      let d = ref d0 in
      let known = ref known0 in
      let per_round = ref [ count_known known0 ] in
      let rounds = ref 0 in
      let valid = ref true in
      let stop = ref (count_known !known = arity) in
      while (not !stop) && !rounds < max_rounds do
        let suggestion =
          timed `Suggest (fun () -> Rules.suggest ~repair !d ~known:!known)
        in
        let answer = user suggestion ~schema in
        if answer = [] then stop := true
        else begin
          incr rounds;
          (* build the fresh tuple t_o of the paper's Remark (1): provided
             values, plus the already-established ones, null elsewhere *)
          let values =
            Array.init arity (fun a ->
                let name = Schema.name schema a in
                match List.assoc_opt name answer with
                | Some v -> v
                | None -> ( match !known.(a) with Some v -> v | None -> Value.Null))
          in
          let tup = Tuple.of_array schema values in
          let current_attrs =
            List.filter_map
              (fun a -> if Value.is_null values.(a) then None else Some (Schema.name schema a))
              (List.init arity Fun.id)
          in
          spec := Spec.extend_with_tuple !spec tup ~current_attrs;
          match analyse !spec with
          | None ->
              valid := false;
              stop := true
          | Some (d', known') ->
              d := d';
              known := known';
              per_round := count_known known' :: !per_round;
              if count_known known' = arity then stop := true
        end
      done;
      {
        resolved = !known;
        valid = !valid;
        rounds = !rounds;
        per_round_known = List.rev !per_round;
        timings;
      }
