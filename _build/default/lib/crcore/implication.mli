(** The implication problem (Section IV): does [Se |= Ot] — is a partial
    temporal order included in every valid completion of a specification?

    The problem is coNP-complete; this checker reduces each fact to one
    incremental SAT call: [v1 ≺_A v2] is implied iff Φ(Se) ∧ ¬x is
    unsatisfiable. In [Exact] mode the answer agrees with the exhaustive
    reference semantics; in the default [Paper] mode it is the paper's
    heuristic (Lemma 6). *)

(** A value-level currency fact, by attribute name. *)
type vfact = { attr : string; lo : Value.t; hi : Value.t }

(** Outcome of an implication query. *)
type answer =
  | Implied        (** the fact holds in every valid completion *)
  | Not_implied    (** some valid completion violates it *)
  | Invalid_spec   (** the specification itself has no valid completion *)
  | Unknown_value  (** a value does not occur in the entity *)

val pp_answer : Format.formatter -> answer -> unit

(** [holds ?mode spec f] decides [Se |= f] for one fact. *)
val holds : ?mode:Encode.mode -> Spec.t -> vfact -> answer

(** [holds_enc enc f] is {!holds} on a prebuilt encoding, sharing the
    solver across queries. *)
val holds_enc : Encode.t -> Sat.Solver.t -> vfact -> answer

(** [implied_order ?mode spec facts] decides [Se |= Ot] for a whole
    partial temporal order: [Implied] iff every fact is implied; the first
    non-implied answer otherwise. *)
val implied_order : ?mode:Encode.mode -> Spec.t -> vfact list -> answer

(** [order_edges_facts spec edges] translates tuple-level order edges into
    value facts (dropping equal-valued pairs), so [Se |= Ot] can be asked
    about an extension expressed on tuples. *)
val order_edges_facts : Spec.t -> Spec.order_edge list -> vfact list
