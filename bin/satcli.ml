(* satcli: DIMACS front end for the bundled CDCL solver (the MiniSat
   stand-in of the reproduction). Prints "s SATISFIABLE" with a model line
   or "s UNSATISFIABLE", like a SAT-competition solver. *)

open Cmdliner

let run file stats =
  let f = Sat.Dimacs.parse_file file in
  let s = Sat.Solver.create () in
  Sat.Solver.add_cnf s f;
  let result = Sat.Solver.solve s in
  (match result with
  | Sat.Solver.Sat ->
      print_endline "s SATISFIABLE";
      let m = Sat.Solver.model s in
      let buf = Buffer.create 256 in
      Buffer.add_string buf "v";
      Array.iteri
        (fun v b -> Buffer.add_string buf (Printf.sprintf " %d" (if b then v + 1 else -(v + 1))))
        m;
      Buffer.add_string buf " 0";
      print_endline (Buffer.contents buf)
  | Sat.Solver.Unsat -> print_endline "s UNSATISFIABLE");
  if stats then begin
    let st = Sat.Solver.stats s in
    Printf.eprintf "c conflicts=%d decisions=%d propagations=%d restarts=%d learnts=%d\n"
      st.Sat.Solver.conflicts st.Sat.Solver.decisions st.Sat.Solver.propagations
      st.Sat.Solver.restarts st.Sat.Solver.learnts
  end;
  match result with Sat.Solver.Sat -> 10 | Sat.Solver.Unsat -> 20

let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"CNF" ~doc:"DIMACS CNF file.")
let stats_arg = Arg.(value & flag & info [ "stats" ] ~doc:"Print solver statistics to stderr.")

let main =
  Cmd.v
    (Cmd.info "satcli" ~version:"1.0.0" ~doc:"CDCL SAT solver on DIMACS input")
    Term.(const run $ file_arg $ stats_arg)

let () = exit (Cmd.eval' main)
