(* satcli: DIMACS front end for the bundled CDCL solver (the MiniSat
   stand-in of the reproduction). Prints "s SATISFIABLE" with a model line
   or "s UNSATISFIABLE", like a SAT-competition solver. *)

open Cmdliner

let run file stats simplify =
  let f = Sat.Dimacs.parse_file file in
  let s = Sat.Solver.create () in
  Sat.Solver.add_cnf s f;
  (* nothing is referenced after solving, so no variable needs freezing:
     this is the one entry point where bounded variable elimination runs
     unrestricted (models are reconstructed transparently) *)
  if simplify then Sat.Solver.simplify s;
  let result = Sat.Solver.solve s in
  (match result with
  | Sat.Solver.Sat ->
      print_endline "s SATISFIABLE";
      let m = Sat.Solver.model s in
      let buf = Buffer.create 256 in
      Buffer.add_string buf "v";
      Array.iteri
        (fun v b -> Buffer.add_string buf (Printf.sprintf " %d" (if b then v + 1 else -(v + 1))))
        m;
      Buffer.add_string buf " 0";
      print_endline (Buffer.contents buf)
  | Sat.Solver.Unsat -> print_endline "s UNSATISFIABLE");
  if stats then begin
    let st = Sat.Solver.stats s in
    Printf.eprintf
      "c conflicts=%d decisions=%d propagations=%d restarts=%d learnts=%d \
       learnts_kept=%d learnts_deleted=%d lbd_avg=%.2f binaries=%d subsumed=%d \
       vars_eliminated=%d vars_substituted=%d simplify_ms=%.1f\n"
      st.Sat.Solver.conflicts st.Sat.Solver.decisions st.Sat.Solver.propagations
      st.Sat.Solver.restarts st.Sat.Solver.learnts st.Sat.Solver.learnts_kept
      st.Sat.Solver.learnts_deleted (Sat.Solver.lbd_avg st) st.Sat.Solver.binaries
      st.Sat.Solver.subsumed st.Sat.Solver.vars_eliminated st.Sat.Solver.vars_substituted
      st.Sat.Solver.simplify_ms
  end;
  match result with Sat.Solver.Sat -> 10 | Sat.Solver.Unsat -> 20

let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"CNF" ~doc:"DIMACS CNF file.")
let stats_arg = Arg.(value & flag & info [ "stats" ] ~doc:"Print solver statistics to stderr.")

let simplify_arg =
  Arg.(
    value & flag
    & info [ "simplify" ]
        ~doc:
          "Run SatELite-style preprocessing (subsumption, self-subsuming \
           resolution, bounded variable elimination) before solving.")

let main =
  Cmd.v
    (Cmd.info "satcli" ~version:"1.0.0" ~doc:"CDCL SAT solver on DIMACS input")
    Term.(const run $ file_arg $ stats_arg $ simplify_arg)

let () = exit (Cmd.eval' main)
