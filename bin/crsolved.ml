(* crsolved: resolution-as-a-service. Loads Σ/Γ once, then serves the
   line/JSON protocol of Crserver.Protocol over a Unix-domain socket,
   keeping per-entity encodings and incremental solver sessions hot
   between requests. Stop it with `crsolve client --socket ... SHUTDOWN`. *)

open Conflict_resolution

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_sigma_gamma sigma_file gamma_file =
  let sigma =
    match sigma_file with
    | None -> []
    | Some f -> (
        match Constraint_parser.parse_many (read_file f) with
        | Ok l -> l
        | Error m -> failwith ("cannot parse currency constraints: " ^ m))
  in
  let gamma =
    match gamma_file with
    | None -> []
    | Some f -> (
        match Constant_cfd.parse_many (read_file f) with
        | Ok l -> l
        | Error m -> failwith ("cannot parse CFDs: " ^ m))
  in
  (sigma, gamma)

let run socket sigma_file gamma_file exact max_rounds budget_conflicts budget_ms max_degrade
    pick session_cap ttl wal_dir fsync snapshot_every max_inflight request_deadline
    idle_timeout =
  let sigma, gamma = parse_sigma_gamma sigma_file gamma_file in
  let pick_strategy =
    match Pick.strategy_of_string pick with
    | Some s -> s
    | None -> failwith (Printf.sprintf "unknown pick policy %S" pick)
  in
  let fsync =
    match Durable.Wal.fsync_of_string fsync with
    | Ok f -> f
    | Error m -> failwith m
  in
  let config =
    (* bound outside the local open: the Config accessors of the same
       names would shadow the CLI parameters *)
    let wd = wal_dir
    and fs = fsync
    and se = snapshot_every
    and mi = max_inflight
    and rd = request_deadline
    and it = idle_timeout in
    Config.(
      default
      |> with_mode (if exact then Encode.Exact else Encode.Paper)
      |> with_max_rounds max_rounds
      |> with_budget_conflicts budget_conflicts
      |> with_budget_ms budget_ms
      |> with_max_degrade max_degrade
      |> with_pick pick_strategy
      |> with_session_cap session_cap
      |> with_session_ttl ttl
      |> with_wal_dir wd
      |> with_fsync fs
      |> with_snapshot_every se
      |> with_max_inflight mi
      |> with_request_deadline rd
      |> with_idle_timeout it)
  in
  let daemon = Crserver.Daemon.create ~config ~sigma ~gamma () in
  (* SIGTERM/SIGINT drain gracefully: stop accepting, finish in-flight
     requests, snapshot, exit. The handler only flips an atomic flag. *)
  let graceful = Sys.Signal_handle (fun _ -> Crserver.Daemon.drain daemon) in
  Sys.set_signal Sys.sigterm graceful;
  Sys.set_signal Sys.sigint graceful;
  (match wal_dir with
  | Some d -> Printf.printf "crsolved: durable (wal %s, fsync %s)\n%!" d
                (Durable.Wal.fsync_to_string fsync)
  | None -> ());
  Printf.printf "crsolved: listening on %s (cap %d session(s)%s)\n%!" socket session_cap
    (match ttl with None -> "" | Some s -> Printf.sprintf ", ttl %gs" s);
  Crserver.Daemon.serve daemon ~socket_path:socket;
  Printf.printf "crsolved: shut down\n%!";
  0

open Cmdliner

let main =
  let socket_a =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket to listen on.")
  in
  let sigma_a =
    Arg.(
      value
      & opt (some file) None
      & info [ "sigma"; "s" ] ~docv:"FILE"
          ~doc:"Currency constraints, shared by every entity the daemon serves.")
  in
  let gamma_a =
    Arg.(
      value
      & opt (some file) None
      & info [ "gamma"; "g" ] ~docv:"FILE" ~doc:"Constant CFDs, shared by every entity.")
  in
  let exact_a =
    Arg.(
      value & flag
      & info [ "exact" ] ~doc:"Use the exact (totality-augmented) encoding instead of the paper's.")
  in
  let max_rounds_a =
    Arg.(value & opt int 5 & info [ "max-rounds" ] ~docv:"N" ~doc:"Interaction-round budget per resolve (default 5).")
  in
  let budget_conflicts_a =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget-conflicts" ] ~docv:"N"
          ~doc:
            "Per-request SAT conflict budget; re-armed on every RESOLVE, so long-lived \
             sessions degrade per request, not per lifetime.")
  in
  let budget_ms_a =
    Arg.(
      value
      & opt (some float) None
      & info [ "budget-ms" ] ~docv:"MS" ~doc:"Per-request soft wall-clock budget in milliseconds.")
  in
  let max_degrade_a =
    Arg.(
      value
      & opt
          (enum
             [
               ("exact", Engine.Exact);
               ("partial", Engine.PartialDeduce);
               ("pick", Engine.PickFallback);
             ])
          Engine.PickFallback
      & info [ "max-degrade" ] ~docv:"LEVEL"
          ~doc:"Lowest degradation level a budget-exhausted request may fall to (default pick).")
  in
  let pick_a =
    Arg.(
      value & opt string "favoured"
      & info [ "pick" ] ~docv:"POLICY"
          ~doc:
            "Pick policy for the fallback rung and as the default BASELINE flavour: \
             favoured, random, max, min, first, last_update_wins (lww), accept_local (local).")
  in
  let max_sessions_a =
    Arg.(
      value & opt int 1024
      & info [ "max-sessions" ] ~docv:"N"
          ~doc:"Live-session cap; least-recently-used entities are evicted beyond it.")
  in
  let ttl_a =
    Arg.(
      value
      & opt (some float) None
      & info [ "ttl" ] ~docv:"SECONDS"
          ~doc:"Idle-session time-to-live; a background sweeper evicts sessions idle longer.")
  in
  let wal_dir_a =
    Arg.(
      value
      & opt (some string) None
      & info [ "wal-dir" ] ~docv:"DIR"
          ~doc:
            "Write-ahead-log directory. Every applied OPEN/INGEST/ORDER/CLOSE is logged \
             before its reply, and startup recovers from the newest snapshot plus the log \
             tail — restart without data loss. Omit to run without durability.")
  in
  let fsync_a =
    Arg.(
      value & opt string "interval:0.05"
      & info [ "fsync" ] ~docv:"POLICY"
          ~doc:
            "WAL fsync policy: $(b,always) (no acknowledged event survives even an OS \
             crash unsynced; slowest), $(b,interval:SECONDS) (bounded lag; default \
             interval:0.05), or $(b,never) (fsync only on rotation/shutdown).")
  in
  let snapshot_every_a =
    Arg.(
      value & opt int 10_000
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:
            "Snapshot the replayable state and compact the WAL every $(docv) applied \
             events; 0 disables periodic snapshots (one is still taken on drain).")
  in
  let max_inflight_a =
    Arg.(
      value & opt int 0
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Admission control: at most $(docv) requests executing concurrently; beyond \
             it the daemon answers OVERLOADED immediately instead of queueing. 0 = \
             unbounded (default).")
  in
  let request_deadline_a =
    Arg.(
      value
      & opt (some float) None
      & info [ "request-deadline" ] ~docv:"SECONDS"
          ~doc:
            "Per-request deadline, enforced through the per-resolve wall-clock budget (a \
             soft bound on solver time).")
  in
  let idle_timeout_a =
    Arg.(
      value
      & opt (some float) None
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:"Close client connections idle longer than $(docv) seconds.")
  in
  Cmd.v
    (Cmd.info "crsolved" ~version:"1.0.0"
       ~doc:
         "Conflict-resolution daemon: per-entity solver sessions and the encoding cache \
          stay hot across requests; arrivals re-resolve incrementally. With $(b,--wal-dir) \
          the daemon is durable: crash recovery replays snapshot + WAL to the exact \
          pre-crash state.")
    Term.(
      const run $ socket_a $ sigma_a $ gamma_a $ exact_a $ max_rounds_a $ budget_conflicts_a
      $ budget_ms_a $ max_degrade_a $ pick_a $ max_sessions_a $ ttl_a $ wal_dir_a $ fsync_a
      $ snapshot_every_a $ max_inflight_a $ request_deadline_a $ idle_timeout_a)

let () =
  try exit (Cmd.eval' ~catch:false main)
  with Failure m | Invalid_argument m | Sys_error m ->
    Printf.eprintf "crsolved: %s\n" m;
    exit 2
