(* crsolve: command-line conflict resolution.

   An entity instance comes as a CSV file (header = schema); currency
   constraints and constant CFDs come as text files in the syntax of
   Currency.Parser / Cfd.Constant_cfd.parse:

     # sigma.txt
     t1[status] = "working" & t2[status] = "retired" -> prec(status)
     prec(status) -> prec(job)

     # gamma.txt
     AC = 212 -> city = "NY"

   Subcommands: validate | resolve | suggest. `resolve --interactive`
   prompts for the suggested attributes on stdin. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_spec entity_file sigma_file gamma_file =
  let entity = Csv.load_entity entity_file in
  let sigma =
    match sigma_file with
    | None -> []
    | Some f -> (
        match Currency.Parser.parse_many (read_file f) with
        | Ok l -> l
        | Error m -> failwith ("cannot parse currency constraints: " ^ m))
  in
  let gamma =
    match gamma_file with
    | None -> []
    | Some f -> (
        match Cfd.Constant_cfd.parse_many (read_file f) with
        | Ok l -> l
        | Error m -> failwith ("cannot parse CFDs: " ^ m))
  in
  Crcore.Spec.make entity ~orders:[] ~sigma ~gamma

let mode_of_exact exact = if exact then Crcore.Encode.Exact else Crcore.Encode.Paper

(* ---- validate ---- *)

let run_validate entity_file sigma_file gamma_file exact =
  let spec = load_spec entity_file sigma_file gamma_file in
  let ok = Crcore.Validity.is_valid ~mode:(mode_of_exact exact) spec in
  Printf.printf "specification is %s\n" (if ok then "VALID" else "INVALID");
  if ok then 0 else 1

(* ---- suggest ---- *)

let run_suggest entity_file sigma_file gamma_file exact =
  let spec = load_spec entity_file sigma_file gamma_file in
  let schema = Crcore.Spec.schema spec in
  let enc = Crcore.Encode.encode ~mode:(mode_of_exact exact) spec in
  if not (Crcore.Validity.check enc) then begin
    print_endline "specification is INVALID";
    1
  end
  else begin
    let d = Crcore.Deduce.deduce_order enc in
    let known = Crcore.Deduce.true_values d in
    Array.iteri
      (fun a vo ->
        Printf.printf "%-16s %s\n" (Schema.name schema a)
          (match vo with Some v -> Value.to_string v | None -> "?"))
      known;
    if Array.for_all (fun v -> v <> None) known then
      print_endline "\nall true values deduced; nothing to ask"
    else begin
      let s = Crcore.Rules.suggest d ~known in
      Printf.printf "\nsuggestion: provide true values for [%s]\n"
        (String.concat "; " (List.map (Schema.name schema) s.Crcore.Rules.attrs));
      List.iter
        (fun (a, vals) ->
          Printf.printf "  %s in { %s }\n" (Schema.name schema a)
            (String.concat " | " (List.map Value.to_string vals)))
        s.Crcore.Rules.candidates;
      Printf.printf "derivable afterwards: [%s]\n"
        (String.concat "; " (List.map (Schema.name schema) s.Crcore.Rules.derivable))
    end;
    0
  end

(* ---- lint ---- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let run_lint entity_file sigma_file gamma_file json =
  let entity = Csv.load_entity entity_file in
  let sigma_spanned =
    match sigma_file with
    | None -> []
    | Some f -> (
        match Currency.Parser.parse_many_spanned (read_file f) with
        | Ok l -> l
        | Error m -> failwith ("cannot parse currency constraints: " ^ m))
  in
  let gamma =
    match gamma_file with
    | None -> []
    | Some f -> (
        match Cfd.Constant_cfd.parse_many (read_file f) with
        | Ok l -> l
        | Error m -> failwith ("cannot parse CFDs: " ^ m))
  in
  let sigma = List.map fst sigma_spanned in
  let sigma_spans = Array.of_list (List.map (fun (_, sp) -> Some sp) sigma_spanned) in
  let spec = Crcore.Spec.make entity ~orders:[] ~sigma ~gamma in
  let ds = Crcore.Analyze.analyze ~sigma_spans spec in
  let count sev =
    List.length (List.filter (fun d -> d.Crcore.Analyze.severity = sev) ds)
  in
  let n_err = count Crcore.Analyze.Error
  and n_warn = count Crcore.Analyze.Warning
  and n_info = count Crcore.Analyze.Info in
  if json then begin
    (* spans always point into the Σ file — it is the only spanned input *)
    let span_file =
      match sigma_file with
      | Some f -> Printf.sprintf "\"%s\"" (json_escape f)
      | None -> "null"
    in
    let diag_json (d : Crcore.Analyze.diagnostic) =
      let span =
        match d.span with
        | None -> "null"
        | Some sp ->
            Printf.sprintf "{\"file\":%s,\"line\":%d,\"col_start\":%d,\"col_end\":%d}"
              span_file sp.Currency.Parser.line sp.Currency.Parser.col_start
              sp.Currency.Parser.col_end
      in
      Printf.sprintf
        "{\"code\":\"%s\",\"severity\":\"%s\",\"subject\":\"%s\",\"message\":\"%s\",\"span\":%s}"
        (json_escape d.code)
        (Crcore.Analyze.severity_to_string d.severity)
        (json_escape (Format.asprintf "%a" (Crcore.Analyze.pp_subject spec) d.subject))
        (json_escape d.message) span
    in
    Printf.printf
      "{\"diagnostics\":[%s],\"errors\":%d,\"warnings\":%d,\"infos\":%d}\n"
      (String.concat "," (List.map diag_json ds))
      n_err n_warn n_info
  end
  else begin
    List.iter (fun d -> Format.printf "%a@." (Crcore.Analyze.pp_diagnostic spec) d) ds;
    if ds = [] then print_endline "clean: no diagnostics"
    else Printf.printf "%d error(s), %d warning(s), %d info\n" n_err n_warn n_info
  end;
  match Crcore.Analyze.max_severity ds with
  | Some Crcore.Analyze.Error -> 2
  | Some Crcore.Analyze.Warning -> 1
  | Some Crcore.Analyze.Info | None -> 0

(* ---- resolve ---- *)

let stdin_user suggestion ~schema =
  List.filter_map
    (fun (a, cands) ->
      Printf.printf "true value for %s%s? (empty to skip) " (Schema.name schema a)
        (if cands = [] then ""
         else Printf.sprintf " [%s]" (String.concat " | " (List.map Value.to_string cands)));
      match In_channel.input_line stdin with
      | None | Some "" -> None
      | Some line -> Some (Schema.name schema a, Value.of_string line))
    suggestion.Crcore.Rules.candidates

let run_resolve entity_file sigma_file gamma_file exact interactive truth_file max_rounds =
  let spec = load_spec entity_file sigma_file gamma_file in
  let schema = Crcore.Spec.schema spec in
  let user =
    if interactive then stdin_user
    else
      match truth_file with
      | Some f -> (
          match Csv.parse_file f with
          | [ header; row ] ->
              let tschema = Schema.make header in
              if not (Schema.equal tschema schema) then failwith "truth schema mismatch";
              Crcore.Framework.oracle (Tuple.make schema (List.map Value.of_string row))
          | _ -> failwith "truth file must have a header and exactly one row")
      | None -> Crcore.Framework.silent
  in
  let o =
    Crcore.Framework.resolve ~mode:(mode_of_exact exact) ~max_rounds ~user spec
  in
  if not o.Crcore.Framework.valid then begin
    print_endline "specification is INVALID";
    1
  end
  else begin
    Printf.printf "resolved after %d interaction(s):\n" o.Crcore.Framework.rounds;
    Array.iteri
      (fun a vo ->
        Printf.printf "%-16s %s\n" (Schema.name schema a)
          (match vo with Some v -> Value.to_string v | None -> "(undetermined)"))
      o.Crcore.Framework.resolved;
    0
  end

(* ---- implication ---- *)

let run_implication entity_file sigma_file gamma_file exact attr lo hi =
  let spec = load_spec entity_file sigma_file gamma_file in
  let mode = mode_of_exact exact in
  let f =
    { Crcore.Implication.attr; lo = Value.of_string lo; hi = Value.of_string hi }
  in
  let a = Crcore.Implication.holds ~mode spec f in
  Format.printf "%s ≺ %s in %s: %a@." lo hi attr Crcore.Implication.pp_answer a;
  match a with Crcore.Implication.Implied -> 0 | _ -> 1

(* ---- explain ---- *)

(* Why is NEW preferred over OLD on ATTR? Static answer: the saturation
   closure contains the fact, and its certificate (a chain of ground
   constraint instances, independently re-checked against the raw spec)
   is the explanation. Otherwise the SAT story: a refutation probe
   Φ(Se) ∧ ¬x decides the fact, with no polynomial derivation to show. *)
let run_explain entity_file sigma_file gamma_file exact attr lo hi =
  let spec = load_spec entity_file sigma_file gamma_file in
  let mode = mode_of_exact exact in
  let lo_v = Value.of_string lo and hi_v = Value.of_string hi in
  let cl = Crcore.Saturate.of_spec ~mode spec in
  let coding = Crcore.Saturate.coding cl in
  let schema = Crcore.Spec.schema spec in
  match Crcore.Saturate.refutation cl with
  | Some _ ->
      Format.printf
        "the specification is statically UNSATISFIABLE — no valid completion exists, so \
         every currency preference holds only vacuously.@.";
      (match Crcore.Saturate.refutation_certificate cl with
      | Some cert ->
          Format.printf "derivation of the contradiction:@.%a@."
            (Crcore.Saturate.pp_cert spec) cert
      | None -> ());
      2
  | None -> (
      let static_fact =
        match Schema.index_opt schema attr with
        | None -> None
        | Some a -> (
            match
              (Crcore.Coding.vid_opt coding a lo_v, Crcore.Coding.vid_opt coding a hi_v)
            with
            | Some l, Some h -> Some { Crcore.Encode.attr = a; lo = l; hi = h }
            | _ -> None)
      in
      match static_fact with
      | Some f when Crcore.Saturate.mem cl f ->
          Format.printf
            "%s is preferred over %s on %s: the fact %s ≺ %s is in the static closure — \
             certain in every valid completion, no solver needed.@."
            hi lo attr lo hi;
          (match Crcore.Saturate.certificate cl f with
          | Some cert ->
              Format.printf "derivation:@.%a@." (Crcore.Saturate.pp_cert spec) cert;
              (match Crcore.Saturate.verify spec cert with
              | Ok () -> Format.printf "certificate independently verified.@."
              | Error m ->
                  Format.printf "CERTIFICATE REJECTED by the independent verifier: %s@." m)
          | None -> ());
          0
      | _ -> (
          match
            Crcore.Implication.holds ~mode spec
              { Crcore.Implication.attr; lo = lo_v; hi = hi_v }
          with
          | Crcore.Implication.Implied ->
              Format.printf
                "%s is preferred over %s on %s: implied in every valid completion, but only \
                 a SAT refutation probe shows it — Φ(Se) ∧ ¬(%s ≺ %s) is unsatisfiable. \
                 The static saturation cannot derive it, so no short certificate exists \
                 (the implication problem is coNP-complete in general).@."
                hi lo attr lo hi;
              0
          | Crcore.Implication.Not_implied ->
              Format.printf
                "%s is NOT certainly preferred over %s on %s: a SAT probe found a valid \
                 completion ordering them the other way (or leaving them unordered).@."
                hi lo attr;
              1
          | Crcore.Implication.Invalid_spec ->
              Format.printf "the specification has no valid completion.@.";
              2
          | Crcore.Implication.Unknown_value ->
              Format.printf
                "value %s or %s does not occur in the entity's %s column — nothing to \
                 prefer.@."
                lo hi attr;
              2))

(* ---- coverage ---- *)

let run_coverage entity_file sigma_file gamma_file exact =
  let spec = load_spec entity_file sigma_file gamma_file in
  let mode = mode_of_exact exact in
  if not (Crcore.Validity.is_valid ~mode spec) then begin
    print_endline "specification is INVALID";
    1
  end
  else begin
    let r = Crcore.Coverage.greedy ~mode spec in
    Printf.printf "coverage %s: %d assertion(s), |Ot| = %d\n"
      (if r.Crcore.Coverage.complete then "complete" else "INCOMPLETE")
      (List.length r.Crcore.Coverage.choices)
      r.Crcore.Coverage.cost;
    List.iter
      (fun c ->
        Printf.printf "  assert most current: %s = %s\n" c.Crcore.Coverage.attr
          (Value.to_string c.Crcore.Coverage.value))
      r.Crcore.Coverage.choices;
    let schema = Crcore.Spec.schema spec in
    Array.iteri
      (fun a vo ->
        Printf.printf "%-16s %s\n" (Schema.name schema a)
          (match vo with Some v -> Value.to_string v | None -> "?"))
      r.Crcore.Coverage.resolved;
    if r.Crcore.Coverage.complete then 0 else 1
  end

(* ---- repair ---- *)

let run_repair entity_file sigma_file gamma_file exact key output =
  (* here the "entity" CSV is a whole relation; [key] partitions it *)
  let relation = Csv.load_entity entity_file in
  let schema = Entity.schema relation in
  let spec = load_spec entity_file sigma_file gamma_file in
  let r =
    Crcore.Repair.run ~mode:(mode_of_exact exact)
      ~key:(if key = "" then [] else String.split_on_char ',' key)
      schema (Entity.tuples relation) ~sigma:spec.Crcore.Spec.sigma
      ~gamma:spec.Crcore.Spec.gamma
  in
  List.iter
    (fun (e : Crcore.Repair.entity_report) ->
      Printf.printf "# key=[%s] merged %d tuple(s), %d inferred, %d fallback%s\n"
        (String.concat ";" (List.map Value.to_string e.Crcore.Repair.key))
        e.Crcore.Repair.size e.Crcore.Repair.determined e.Crcore.Repair.fell_back
        (if e.Crcore.Repair.valid then "" else " [INVALID SPEC]"))
    r.Crcore.Repair.entities;
  let rows =
    Schema.attr_names schema
    :: List.map (fun t -> List.map Value.to_string (Tuple.values t)) r.Crcore.Repair.repaired
  in
  (match output with
  | Some path ->
      Csv.write_file path rows;
      Printf.printf "repaired relation written to %s\n" path
  | None -> print_string (Csv.to_string rows));
  if r.Crcore.Repair.invalid_entities = 0 then 0 else 1

(* ---- batch ---- *)

let parse_sigma_gamma sigma_file gamma_file =
  let sigma =
    match sigma_file with
    | None -> []
    | Some f -> (
        match Currency.Parser.parse_many (read_file f) with
        | Ok l -> l
        | Error m -> failwith ("cannot parse currency constraints: " ^ m))
  in
  let gamma =
    match gamma_file with
    | None -> []
    | Some f -> (
        match Cfd.Constant_cfd.parse_many (read_file f) with
        | Ok l -> l
        | Error m -> failwith ("cannot parse CFDs: " ^ m))
  in
  (sigma, gamma)

(* group a relation's tuples by key attribute values, first-seen order *)
let group_by_key key_positions tuples =
  let seen = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun t ->
      let k = List.map (fun a -> Value.to_string (Tuple.get t a)) key_positions in
      match Hashtbl.find_opt seen k with
      | Some r -> r := t :: !r
      | None ->
          Hashtbl.add seen k (ref [ t ]);
          order := k :: !order)
    tuples;
  List.rev_map (fun k -> (k, List.rev !(Hashtbl.find seen k))) !order

(* -j default: the CRSOLVE_JOBS environment variable, else sequential *)
let default_jobs () =
  match Sys.getenv_opt "CRSOLVE_JOBS" with
  | Some s -> ( match int_of_string_opt s with Some j when j > 0 -> j | _ -> 1)
  | None -> 1

let run_batch entity_file dir sigma_file gamma_file exact naive jobs key truth_file max_rounds
    budget_conflicts budget_ms max_degrade fail_fast dump_dimacs output =
  let sigma, gamma = parse_sigma_gamma sigma_file gamma_file in
  let mk_label_spec label entity =
    match Crcore.Spec.make_res entity ~orders:[] ~sigma ~gamma with
    | Ok spec -> (label, spec)
    | Error e ->
        failwith (Format.asprintf "entity %s: bad specification: %a" label Crcore.Spec.pp_error e)
  in
  let labelled =
    match (dir, entity_file) with
    | Some d, _ ->
        let files =
          Sys.readdir d |> Array.to_list
          |> List.filter (fun f -> Filename.check_suffix f ".csv")
          |> List.sort compare
        in
        if files = [] then failwith (Printf.sprintf "no .csv files in %s" d);
        List.map
          (fun f ->
            mk_label_spec (Filename.remove_extension f) (Csv.load_entity (Filename.concat d f)))
          files
    | None, Some ef ->
        if key = "" then failwith "batch: --entity needs --key to split the relation into entities";
        let rel = Csv.load_entity ef in
        let schema = Entity.schema rel in
        let key_attrs = String.split_on_char ',' key in
        List.iter
          (fun a ->
            if not (Schema.mem schema a) then
              failwith (Printf.sprintf "batch: unknown key attribute %S" a))
          key_attrs;
        let key_positions = List.map (Schema.index schema) key_attrs in
        group_by_key key_positions (Entity.tuples rel)
        |> List.map (fun (k, tuples) ->
               mk_label_spec (String.concat ";" k) (Entity.make schema tuples))
    | None, None -> failwith "batch: either --entity with --key or --dir is required"
  in
  let schema =
    match labelled with
    | (_, spec) :: _ -> Crcore.Spec.schema spec
    | [] -> failwith "batch: no entities"
  in
  let user_for =
    match truth_file with
    | None -> fun _ -> Crcore.Framework.silent
    | Some f -> (
        if dir <> None then failwith "batch: --truth is only supported with --entity/--key";
        match Csv.parse_file f with
        | [] -> failwith "empty truth file"
        | header :: rows ->
            let tschema = Schema.make header in
            if not (Schema.equal tschema schema) then failwith "truth schema mismatch";
            let key_positions =
              List.map (Schema.index schema) (String.split_on_char ',' key)
            in
            let truths = Hashtbl.create 64 in
            List.iter
              (fun row ->
                let t = Tuple.make schema (List.map Value.of_string row) in
                let k =
                  String.concat ";"
                    (List.map (fun a -> Value.to_string (Tuple.get t a)) key_positions)
                in
                Hashtbl.replace truths k t)
              rows;
            fun label ->
              (match Hashtbl.find_opt truths label with
              | Some t -> Crcore.Framework.oracle t
              | None -> Crcore.Framework.silent))
  in
  let items =
    List.map
      (fun (label, spec) -> { Crcore.Engine.label; spec; user = user_for label })
      labelled
  in
  let jobs = max 1 jobs in
  let cores = Parallel.Pool.recommended_jobs () in
  if jobs > cores then
    Printf.eprintf
      "crsolve: warning: -j %d exceeds the %d available core(s); running %d job(s) \
       (over-subscribing domains only slows batches down)\n%!"
      jobs cores (min jobs cores);
  let base =
    if naive then Conflict_resolution.Config.naive else Conflict_resolution.Config.default
  in
  let config =
    Conflict_resolution.Config.(
      base
      |> with_mode (mode_of_exact exact)
      |> with_max_rounds max_rounds
      |> with_jobs jobs
      |> with_budget_conflicts budget_conflicts
      |> with_budget_ms budget_ms
      |> with_max_degrade max_degrade
      |> with_fail_fast fail_fast
      |> to_engine)
  in
  let dumped = ref 0 in
  let dump_failure label =
    match dump_dimacs with
    | None -> ()
    | Some path -> (
        (* Rebuild the failing entity's post-simplification clause DB in a
           throwaway solver: the engine's own solver may be gone (or in a
           worker domain), and a standalone reconstruction is exactly what an
           external SAT tool needs to reproduce the formula. *)
        let path = if !dumped = 0 then path else Printf.sprintf "%s.%d" path !dumped in
        incr dumped;
        match List.assoc_opt label labelled with
        | None -> Printf.eprintf "[%s] dump-dimacs: no such entity\n%!" label
        | Some spec -> (
            try
              let enc = Crcore.Encode.encode ~mode:(mode_of_exact exact) spec in
              let s = Sat.Solver.create () in
              Sat.Solver.add_cnf s enc.Crcore.Encode.cnf;
              Sat.Solver.freeze_all s;
              Sat.Solver.simplify s;
              Out_channel.with_open_text path (fun oc ->
                  output_string oc (Sat.Dimacs.of_solver s));
              Printf.eprintf "[%s] post-simplify DIMACS written to %s\n%!" label path
            with exn ->
              Printf.eprintf "[%s] dump-dimacs failed: %s\n%!" label
                (Printexc.to_string exn)))
  in
  let on_result (r : Crcore.Engine.item_result) =
    match r.Crcore.Engine.outcome with
    | Error e ->
        Printf.printf "[%s] ERROR in %s: %s\n%!" r.Crcore.Engine.label
          (Crcore.Engine.phase_to_string e.Crcore.Engine.phase)
          e.Crcore.Engine.exn;
        dump_failure r.Crcore.Engine.label
    | Ok res ->
        let known =
          Array.fold_left (fun n v -> if v = None then n else n + 1) 0 res.Crcore.Engine.resolved
        in
        Printf.printf "[%s] %s rounds=%d resolved=%d/%d level=%s%s\n%!" r.Crcore.Engine.label
          (if res.Crcore.Engine.valid then "valid" else "INVALID")
          res.Crcore.Engine.rounds known
          (Array.length res.Crcore.Engine.resolved)
          (Crcore.Engine.level_to_string res.Crcore.Engine.level)
          (match res.Crcore.Engine.degrade_reason with
          | None -> ""
          | Some reason ->
              Printf.sprintf " degraded=%s" (Crcore.Engine.reason_to_string reason))
  in
  let results, stats = Crcore.Engine.run_batch ~config ~on_result items in
  Format.printf "@.%a@." Crcore.Engine.pp_stats stats;
  (match output with
  | None -> ()
  | Some path ->
      let rows =
        ("entity" :: Schema.attr_names schema)
        :: List.map
             (fun (r : Crcore.Engine.item_result) ->
               r.Crcore.Engine.label
               ::
               (match r.Crcore.Engine.outcome with
               | Error _ ->
                   List.map (fun _ -> "") (Schema.attr_names schema)
               | Ok res ->
                   Array.to_list res.Crcore.Engine.resolved
                   |> List.map (function Some v -> Value.to_string v | None -> "")))
             results
      in
      Csv.write_file path rows;
      Printf.printf "resolved tuples written to %s\n" path);
  if stats.Crcore.Engine.errors > 0 then 2
  else if stats.Crcore.Engine.valid_entities = stats.Crcore.Engine.entities then 0
  else 1

(* ---- client ---- *)

let run_client socket requests retries retry_base_ms timeout =
  let lines =
    if requests <> [] then requests
    else
      let rec slurp acc =
        match In_channel.input_line stdin with
        | None -> List.rev acc
        | Some "" -> slurp acc
        | Some l -> slurp (l :: acc)
      in
      slurp []
  in
  if lines = [] then failwith "client: no requests (pass them as arguments or on stdin)";
  let client =
    Crserver.Client.connect ~retries ~retry_base_ms ?deadline:timeout
      ~socket_path:socket ()
  in
  let is_failure r = String.length r >= 11 && String.sub r 0 11 = {|{"ok":false|} in
  match Crserver.Client.request_many client lines with
  | Ok responses ->
      List.iter print_endline responses;
      Crserver.Client.close client;
      (* any {"ok":false,...} response fails the invocation *)
      if List.exists is_failure responses then 1 else 0
  | Error (partial, msg) ->
      List.iter print_endline partial;
      Printf.eprintf "crsolve: %s\n" msg;
      Crserver.Client.close client;
      1

(* ---- cmdliner wiring ---- *)

open Cmdliner

let entity_arg =
  Arg.(required & opt (some file) None & info [ "entity"; "e" ] ~docv:"CSV" ~doc:"Entity instance CSV (header row = schema).")

let sigma_arg =
  Arg.(value & opt (some file) None & info [ "sigma"; "s" ] ~docv:"FILE" ~doc:"Currency constraints file.")

let gamma_arg =
  Arg.(value & opt (some file) None & info [ "gamma"; "g" ] ~docv:"FILE" ~doc:"Constant CFDs file.")

let exact_arg =
  Arg.(value & flag & info [ "exact" ] ~doc:"Use the exact (totality-augmented) encoding instead of the paper's.")

let interactive_arg =
  Arg.(value & flag & info [ "interactive"; "i" ] ~doc:"Prompt for suggested attributes on stdin.")

let truth_arg =
  Arg.(value & opt (some file) None & info [ "truth" ] ~docv:"CSV" ~doc:"Ground-truth tuple CSV; simulates a perfect user.")

let max_rounds_arg =
  Arg.(value & opt int 5 & info [ "max-rounds" ] ~docv:"N" ~doc:"Interaction-round budget (default 5).")

let lint_cmd =
  let json_a =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit diagnostics as a JSON object instead of text.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically analyse the specification: errors (provably unsatisfiable), \
             warnings (likely misuse) and redundancy notes, without running the SAT solver. \
             Exits 0 when clean (info-only allowed), 1 on warnings, 2 on errors.")
    Term.(const run_lint $ entity_arg $ sigma_arg $ gamma_arg $ json_a)

let validate_cmd =
  Cmd.v
    (Cmd.info "validate" ~doc:"Check whether the specification admits a valid completion")
    Term.(const run_validate $ entity_arg $ sigma_arg $ gamma_arg $ exact_arg)

let suggest_cmd =
  Cmd.v
    (Cmd.info "suggest" ~doc:"Deduce true values and print the suggestion for the rest")
    Term.(const run_suggest $ entity_arg $ sigma_arg $ gamma_arg $ exact_arg)

let resolve_cmd =
  Cmd.v
    (Cmd.info "resolve" ~doc:"Run the full conflict-resolution framework")
    Term.(
      const run_resolve $ entity_arg $ sigma_arg $ gamma_arg $ exact_arg $ interactive_arg
      $ truth_arg $ max_rounds_arg)

let implication_cmd =
  let attr_a = Arg.(required & pos 0 (some string) None & info [] ~docv:"ATTR") in
  let lo_a = Arg.(required & pos 1 (some string) None & info [] ~docv:"OLD") in
  let hi_a = Arg.(required & pos 2 (some string) None & info [] ~docv:"NEW") in
  Cmd.v
    (Cmd.info "implication"
       ~doc:"Decide whether OLD ≺ NEW on ATTR holds in every valid completion")
    Term.(
      const run_implication $ entity_arg $ sigma_arg $ gamma_arg $ exact_arg $ attr_a $ lo_a
      $ hi_a)

let explain_cmd =
  let attr_a = Arg.(required & pos 0 (some string) None & info [] ~docv:"ATTR") in
  let lo_a = Arg.(required & pos 1 (some string) None & info [] ~docv:"OLD") in
  let hi_a = Arg.(required & pos 2 (some string) None & info [] ~docv:"NEW") in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Explain why NEW is preferred over OLD on ATTR: print the static derivation \
             certificate when the saturation closure proves it, or the SAT-probe account \
             otherwise.")
    Term.(
      const run_explain $ entity_arg $ sigma_arg $ gamma_arg $ exact_arg $ attr_a $ lo_a
      $ hi_a)

let coverage_cmd =
  Cmd.v
    (Cmd.info "coverage"
       ~doc:"Find a small set of currency assertions that makes the true value exist")
    Term.(const run_coverage $ entity_arg $ sigma_arg $ gamma_arg $ exact_arg)

let repair_cmd =
  let key_a =
    Arg.(value & opt string "" & info [ "key"; "k" ] ~docv:"ATTRS" ~doc:"Comma-separated key attributes partitioning the relation into entities.")
  in
  let out_a =
    Arg.(value & opt (some string) None & info [ "output"; "o" ] ~docv:"CSV" ~doc:"Write the repaired relation here instead of stdout.")
  in
  Cmd.v
    (Cmd.info "repair" ~doc:"Repair a whole relation: one current tuple per entity")
    Term.(const run_repair $ entity_arg $ sigma_arg $ gamma_arg $ exact_arg $ key_a $ out_a)

let batch_cmd =
  let entity_a =
    Arg.(value & opt (some file) None & info [ "entity"; "e" ] ~docv:"CSV" ~doc:"Relation CSV holding every entity's tuples; split on $(b,--key).")
  in
  let dir_a =
    Arg.(value & opt (some dir) None & info [ "dir"; "d" ] ~docv:"DIR" ~doc:"Directory of per-entity CSV files (header row = schema) instead of $(b,--entity).")
  in
  let key_a =
    Arg.(value & opt string "" & info [ "key"; "k" ] ~docv:"ATTRS" ~doc:"Comma-separated key attributes partitioning the relation into entities.")
  in
  let naive_a =
    Arg.(value & flag & info [ "naive" ] ~doc:"Disable the incremental solver sessions and the encoding cache (per-entity framework behaviour); for comparisons.")
  in
  let out_a =
    Arg.(value & opt (some string) None & info [ "output"; "o" ] ~docv:"CSV" ~doc:"Write one resolved tuple per entity here.")
  in
  let jobs_a =
    Arg.(
      value
      & opt int (default_jobs ())
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Resolve entities on $(docv) domains in parallel. Results are identical to the \
             sequential run and stream in input order. Defaults to \\$CRSOLVE_JOBS, else 1.")
  in
  let budget_conflicts_a =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget-conflicts" ] ~docv:"N"
          ~doc:
            "Per-entity SAT conflict budget. An entity that exhausts it degrades down the \
             ladder (exact, partial, pick) instead of running unbounded; deterministic \
             across $(b,--jobs).")
  in
  let budget_ms_a =
    Arg.(
      value
      & opt (some float) None
      & info [ "budget-ms" ] ~docv:"MS"
          ~doc:
            "Per-entity soft wall-clock budget in milliseconds, checked between phases and \
             rounds only. Prefer $(b,--budget-conflicts) for reproducible outcomes.")
  in
  let max_degrade_a =
    Arg.(
      value
      & opt
          (enum
             [
               ("exact", Crcore.Engine.Exact);
               ("partial", Crcore.Engine.PartialDeduce);
               ("pick", Crcore.Engine.PickFallback);
             ])
          Crcore.Engine.PickFallback
      & info [ "max-degrade" ] ~docv:"LEVEL"
          ~doc:
            "Lowest degradation level a budget-exhausted entity may fall to: $(b,exact) \
             (never degrade; conservative unresolved answer), $(b,partial) (proven facts \
             only), or $(b,pick) (the paper's Pick heuristic; default).")
  in
  let fail_fast_a =
    Arg.(
      value & flag
      & info [ "fail-fast" ]
          ~doc:
            "Abort the whole batch on the first entity failure instead of isolating it as \
             that entity's ERROR outcome.")
  in
  let dump_dimacs_a =
    (* hidden debug flag: not listed in the manpage *)
    Arg.(
      value
      & opt (some string) None
      & info [ "dump-dimacs" ] ~docv:"PATH" ~docs:Manpage.s_none
          ~doc:
            "Debug: on an entity failure, write that entity's post-simplification clause \
             database (level-0 units, binary layer, surviving long clauses) as DIMACS CNF \
             to $(docv); further failures go to $(docv).1, $(docv).2, ...")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Resolve a whole collection of entities with the incremental batch engine")
    Term.(
      const run_batch $ entity_a $ dir_a $ sigma_arg $ gamma_arg $ exact_arg $ naive_a
      $ jobs_a $ key_a $ truth_arg $ max_rounds_arg $ budget_conflicts_a $ budget_ms_a
      $ max_degrade_a $ fail_fast_a $ dump_dimacs_a $ out_a)

let client_cmd =
  let socket_a =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket the crsolved daemon listens on.")
  in
  let requests_a =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"REQUEST"
          ~doc:
            "Protocol request lines (e.g. $(b,'RESOLVE e1'), \
             $(b,'INGEST e1|Alice,NYC,10001')). With none, requests are read from stdin, \
             one per line. Mutating requests may carry an $(b,@seq) prefix \
             ($(b,'@3 INGEST e1|...')) so retries after a daemon crash are idempotent.")
  in
  let retries_a =
    Arg.(
      value & opt int 4
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Re-attempts per request on connection refused, connection loss, OVERLOADED \
             replies, or a deadline expiry; exponential backoff with jitter between \
             attempts (default 4).")
  in
  let retry_base_a =
    Arg.(
      value & opt float 50.
      & info [ "retry-base-ms" ] ~docv:"MS"
          ~doc:
            "Backoff base: attempt k sleeps roughly $(docv)*2^k ms (jittered, capped at \
             5 s). Default 50.")
  in
  let timeout_a =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Client-side per-request deadline; a hung daemon fails the attempt (and is \
             retried) instead of wedging the CLI. Default: wait forever.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send protocol requests to a running crsolved daemon and print the JSON \
          responses. Transient failures (daemon restarting, OVERLOADED, timeouts) are \
          retried with exponential backoff. Exits 1 if any request failed.")
    Term.(
      const run_client $ socket_a $ requests_a $ retries_a $ retry_base_a $ timeout_a)

let main =
  Cmd.group
    (Cmd.info "crsolve" ~version:"1.0.0"
       ~doc:"Conflict resolution by inferring data currency and consistency (ICDE 2013)")
    [
      lint_cmd;
      validate_cmd;
      suggest_cmd;
      resolve_cmd;
      batch_cmd;
      implication_cmd;
      explain_cmd;
      coverage_cmd;
      repair_cmd;
      client_cmd;
    ]

let () =
  try exit (Cmd.eval' ~catch:false main)
  with Failure m | Invalid_argument m | Sys_error m ->
    Printf.eprintf "crsolve: %s\n" m;
    exit 2
