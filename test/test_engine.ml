(* The batch resolution engine: equivalence with the per-entity framework,
   incremental-session vs naive-rebuild configs, and the encoding cache. *)

module F = Crcore.Framework
module E = Crcore.Engine

let same_outcome (o : F.outcome) (r : E.result) =
  o.F.resolved = r.E.resolved
  && o.F.valid = r.E.valid
  && o.F.rounds = r.E.rounds
  && o.F.per_round_known = r.E.per_round_known

let the_ok (ir : E.item_result) =
  match ir.E.outcome with
  | Ok r -> r
  | Error e -> Alcotest.failf "%s: unexpected batch error: %s" ir.E.label e.E.exn

let check_same_outcome msg o r =
  Alcotest.(check bool) (msg ^ ": resolved") true (o.F.resolved = r.E.resolved);
  Alcotest.(check bool) (msg ^ ": valid") o.F.valid r.E.valid;
  Alcotest.(check int) (msg ^ ": rounds") o.F.rounds r.E.rounds;
  Alcotest.(check (list int)) (msg ^ ": per-round known") o.F.per_round_known r.E.per_round_known

let test_edith_matches_framework () =
  let o = F.resolve ~user:F.silent (Fixtures.edith_spec ()) in
  let r, st = E.resolve ~user:F.silent (Fixtures.edith_spec ()) in
  check_same_outcome "edith/silent" o r;
  Alcotest.(check bool) "one solver session" true (st.E.solvers_built >= 1)

let test_george_oracle_matches_framework () =
  let user = F.oracle Fixtures.george_truth in
  let o = F.resolve ~user (Fixtures.george_spec ()) in
  let r, st = E.resolve ~user (Fixtures.george_spec ()) in
  check_same_outcome "george/oracle" o r;
  (* every interaction round went through either the delta path or a
     universe-growth rebuild — never silently skipped *)
  Alcotest.(check int) "rounds accounted for" r.E.rounds
    (st.E.delta_extensions + st.E.rebuilds)

let test_invalid_spec_matches_framework () =
  let spec () =
    Crcore.Spec.make Fixtures.george_entity
      ~orders:
        [
          { Crcore.Spec.attr = "status"; lo = 0; hi = 1 };
          { Crcore.Spec.attr = "status"; lo = 1; hi = 0 };
        ]
      ~sigma:Fixtures.sigma ~gamma:Fixtures.gamma
  in
  let o = F.resolve ~user:F.silent (spec ()) in
  let r, _ = E.resolve ~user:F.silent (spec ()) in
  Alcotest.(check bool) "both invalid" false (o.F.valid || r.E.valid);
  check_same_outcome "invalid" o r

let test_cache_hit_identical () =
  let cache = E.create_cache () in
  let user = F.oracle Fixtures.george_truth in
  let r1, st1 = E.resolve ~cache ~user (Fixtures.george_spec ()) in
  let r2, st2 = E.resolve ~cache ~user (Fixtures.george_spec ()) in
  Alcotest.(check bool) "cold run misses" true (st1.E.cache_misses >= 1);
  Alcotest.(check bool) "warm run hits" true (st2.E.cache_hits >= 1);
  Alcotest.(check bool) "identical results" true
    (r1.E.resolved = r2.E.resolved && r1.E.rounds = r2.E.rounds)

let test_run_batch_matches_per_entity () =
  let items =
    [
      { E.label = "edith"; spec = Fixtures.edith_spec (); user = F.oracle Fixtures.edith_truth };
      { E.label = "george"; spec = Fixtures.george_spec (); user = F.oracle Fixtures.george_truth };
    ]
  in
  let results, stats = E.run_batch items in
  Alcotest.(check int) "all entities resolved" 2 stats.E.entities;
  Alcotest.(check int) "all valid" 2 stats.E.valid_entities;
  Alcotest.(check int) "attrs total" 16 stats.E.attrs_total;
  List.iter
    (fun (ir : E.item_result) ->
      let spec =
        if ir.E.label = "edith" then Fixtures.edith_spec () else Fixtures.george_spec ()
      in
      let truth = if ir.E.label = "edith" then Fixtures.edith_truth else Fixtures.george_truth in
      let o = F.resolve ~user:(F.oracle truth) spec in
      check_same_outcome ir.E.label o (the_ok ir))
    results

let test_batch_streaming_order () =
  let seen = ref [] in
  let items =
    [
      { E.label = "a"; spec = Fixtures.edith_spec (); user = F.silent };
      { E.label = "b"; spec = Fixtures.george_spec (); user = F.silent };
    ]
  in
  let _, _ = E.run_batch ~on_result:(fun ir -> seen := ir.E.label :: !seen) items in
  Alcotest.(check (list string)) "streamed in order" [ "a"; "b" ] (List.rev !seen)

let test_stats_aggregation () =
  let items =
    List.concat_map
      (fun _ ->
        [ { E.label = "g"; spec = Fixtures.george_spec (); user = F.oracle Fixtures.george_truth } ])
      [ 1; 2; 3 ]
  in
  let _, stats = E.run_batch items in
  Alcotest.(check int) "entities" 3 stats.E.entities;
  (* identical specs: the shared cache serves runs 2 and 3 *)
  Alcotest.(check bool) "cache hits on repeats" true (stats.E.cache_hits >= 2);
  let rate = E.cache_hit_rate stats in
  Alcotest.(check bool) "hit rate in [0,1]" true (rate >= 0. && rate <= 1.);
  Alcotest.(check bool) "times non-negative" true
    (stats.E.times.E.encode_ms >= 0.
    && stats.E.times.E.validity_ms >= 0.
    && stats.E.times.E.deduce_ms >= 0.
    && stats.E.times.E.suggest_ms >= 0.);
  Alcotest.(check bool) "pp_stats renders" true
    (String.length (Format.asprintf "%a" E.pp_stats stats) > 0)

let test_facade_surface () =
  (* the stable facade re-exports the whole pipeline under one name *)
  let spec =
    Conflict_resolution.Spec.make Fixtures.edith_entity ~orders:[] ~sigma:Fixtures.sigma
      ~gamma:Fixtures.gamma
  in
  let o = Conflict_resolution.Framework.resolve ~user:Conflict_resolution.Framework.silent spec in
  Alcotest.(check bool) "facade resolves edith" true o.Conflict_resolution.Framework.valid;
  let r, _ =
    Conflict_resolution.Engine.resolve ~user:Conflict_resolution.Framework.silent spec
  in
  Alcotest.(check bool) "facade engine agrees" true (o.F.resolved = r.E.resolved)

let prop_incremental_equals_naive =
  (* the whole point: config {incremental; cache} must never change what is
     resolved, only how much work it takes *)
  QCheck.Test.make ~count:60 ~name:"incremental session == naive rebuild on random specs"
    Fixtures.qcheck_spec (fun spec ->
      let user =
        match Crcore.Reference.analyze spec with
        | Some r when r.Crcore.Reference.valid -> (
            match r.Crcore.Reference.true_tuple with
            | Some t -> F.oracle (Tuple.of_array (Crcore.Spec.schema spec) t)
            | None -> F.silent)
        | _ -> F.silent
      in
      let ri, _ = E.resolve ~config:E.default_config ~user spec in
      let rn, _ = E.resolve ~config:E.naive_config ~user spec in
      ri.E.resolved = rn.E.resolved
      && ri.E.valid = rn.E.valid
      && ri.E.rounds = rn.E.rounds
      && ri.E.per_round_known = rn.E.per_round_known)

let prop_engine_equals_framework_on_datasets =
  QCheck.Test.make ~count:6 ~name:"batch engine == per-entity framework on generator data"
    QCheck.(int_range 0 100)
    (fun seed ->
      let ds = Datagen.Person.quick ~seed ~n_entities:4 ~size:7 () in
      let items =
        List.map
          (fun (c : Datagen.Types.case) ->
            {
              E.label = string_of_int c.Datagen.Types.id;
              spec = Datagen.Types.spec_of ds c;
              user = F.oracle c.Datagen.Types.truth;
            })
          ds.Datagen.Types.cases
      in
      let results, stats = E.run_batch items in
      stats.E.entities = List.length items
      && List.for_all2
           (fun (c : Datagen.Types.case) (ir : E.item_result) ->
             let o =
               F.resolve ~user:(F.oracle c.Datagen.Types.truth) (Datagen.Types.spec_of ds c)
             in
             same_outcome o (the_ok ir))
           ds.Datagen.Types.cases results)

let prop_exact_mode_configs_agree =
  QCheck.Test.make ~count:25 ~name:"exact-mode incremental == exact-mode naive"
    Fixtures.qcheck_spec (fun spec ->
      let ri, _ =
        E.resolve ~config:{ E.default_config with mode = Crcore.Encode.Exact } ~user:F.silent spec
      in
      let rn, _ =
        E.resolve ~config:{ E.naive_config with mode = Crcore.Encode.Exact } ~user:F.silent spec
      in
      ri.E.resolved = rn.E.resolved && ri.E.valid = rn.E.valid)

let () =
  Alcotest.run "engine"
    [
      ( "framework_equivalence",
        [
          Alcotest.test_case "Edith silent" `Quick test_edith_matches_framework;
          Alcotest.test_case "George oracle" `Quick test_george_oracle_matches_framework;
          Alcotest.test_case "invalid spec" `Quick test_invalid_spec_matches_framework;
        ] );
      ( "sessions_and_cache",
        [
          Alcotest.test_case "cache hit is identical" `Quick test_cache_hit_identical;
          Alcotest.test_case "batch == per-entity" `Quick test_run_batch_matches_per_entity;
          Alcotest.test_case "streaming order" `Quick test_batch_streaming_order;
          Alcotest.test_case "stats aggregation" `Quick test_stats_aggregation;
          Alcotest.test_case "facade surface" `Quick test_facade_surface;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_incremental_equals_naive;
            prop_engine_equals_framework_on_datasets;
            prop_exact_mode_configs_agree;
          ] );
    ]
