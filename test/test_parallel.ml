(* The domain-parallel batch path: Parallel.Pool scheduling discipline,
   and the engine-level guarantee that [jobs > 1] never changes what
   run_batch returns — only how long it takes. *)

module F = Crcore.Framework
module E = Crcore.Engine

(* ---- Parallel.Pool unit tests ---- *)

let test_pool_covers_all_indices () =
  List.iter
    (fun jobs ->
      Parallel.Pool.with_pool ~jobs (fun pool ->
          let n = 100 in
          let out = Array.make n (-1) in
          Parallel.Pool.run pool ~n (fun i -> out.(i) <- i * i);
          Array.iteri
            (fun i v ->
              Alcotest.(check int) (Printf.sprintf "jobs=%d index %d" jobs i) (i * i) v)
            out))
    [ 1; 2; 4; 8 ]

let test_pool_chunk_sizes () =
  Parallel.Pool.with_pool ~jobs:4 (fun pool ->
      List.iter
        (fun chunk ->
          let n = 37 in
          let out = Array.make n false in
          Parallel.Pool.run ~chunk pool ~n (fun i -> out.(i) <- true);
          Alcotest.(check bool)
            (Printf.sprintf "chunk=%d covers all" chunk)
            true
            (Array.for_all Fun.id out))
        [ 1; 5; 1000 ])

let test_pool_reuse_and_empty () =
  Parallel.Pool.with_pool ~jobs:3 (fun pool ->
      let calls = Atomic.make 0 in
      Parallel.Pool.run pool ~n:0 (fun _ -> Atomic.incr calls);
      Alcotest.(check int) "n=0 runs nothing" 0 (Atomic.get calls);
      Parallel.Pool.run pool ~n:10 (fun _ -> Atomic.incr calls);
      Parallel.Pool.run pool ~n:10 (fun _ -> Atomic.incr calls);
      Alcotest.(check int) "two jobs on one pool" 20 (Atomic.get calls))

let test_pool_lowest_failure_wins () =
  List.iter
    (fun jobs ->
      Parallel.Pool.with_pool ~jobs (fun pool ->
          let raised =
            try
              Parallel.Pool.run pool ~n:60 (fun i ->
                  if i = 7 || i = 41 then failwith (string_of_int i));
              None
            with Failure m -> Some m
          in
          (* every index is still attempted; the failure re-raised at the
             end is the lowest-indexed one *)
          Alcotest.(check (option string))
            (Printf.sprintf "jobs=%d lowest failure" jobs)
            (Some "7") raised))
    [ 1; 4 ]

let test_pool_run_collect () =
  List.iter
    (fun jobs ->
      Parallel.Pool.with_pool ~jobs (fun pool ->
          let results =
            Parallel.Pool.run_collect pool ~n:20 (fun i ->
                if i mod 7 = 3 then failwith (string_of_int i) else i * 10)
          in
          Alcotest.(check int)
            (Printf.sprintf "jobs=%d result count" jobs)
            20 (Array.length results);
          Array.iteri
            (fun i r ->
              match r with
              | Ok v ->
                  Alcotest.(check bool)
                    (Printf.sprintf "jobs=%d item %d ok" jobs i)
                    true
                    (i mod 7 <> 3 && v = i * 10)
              | Error e ->
                  Alcotest.(check bool)
                    (Printf.sprintf "jobs=%d item %d error" jobs i)
                    true
                    (i mod 7 = 3
                    && e.Parallel.Pool.index = i
                    && (match e.Parallel.Pool.exn with
                       | Failure m -> m = string_of_int i
                       | _ -> false)))
            results))
    [ 1; 4 ]

let test_pool_run_collect_empty () =
  Parallel.Pool.with_pool ~jobs:2 (fun pool ->
      let results = Parallel.Pool.run_collect pool ~n:0 (fun i -> i) in
      Alcotest.(check int) "n=0 collects nothing" 0 (Array.length results))

let test_pool_clamps_jobs () =
  Parallel.Pool.with_pool ~jobs:0 (fun pool ->
      Alcotest.(check int) "jobs clamped to 1" 1 (Parallel.Pool.jobs pool);
      let hit = ref false in
      Parallel.Pool.run pool ~n:1 (fun _ -> hit := true);
      Alcotest.(check bool) "still runs" true !hit)

(* ---- batches of random specs, including lint-rejected and unsat ---- *)

(* A spec the lint pre-phase provably rejects: a two-cycle in [a]'s
   explicit currency order between tuples holding distinct values. *)
let broken_spec () =
  let mk vals = Tuple.make Fixtures.small_schema (List.map (fun s -> Value.Str s) vals) in
  let entity = Entity.make Fixtures.small_schema [ mk [ "a0"; "b0"; "c0" ]; mk [ "a1"; "b1"; "c1" ] ] in
  Crcore.Spec.make entity
    ~orders:
      [ { Crcore.Spec.attr = "a"; lo = 0; hi = 1 }; { Crcore.Spec.attr = "a"; lo = 1; hi = 0 } ]
    ~sigma:[] ~gamma:[]

(* 20 specs per generated batch: random ones (possibly unsat through
   inconsistent orders / contradictory Σ) with every fifth replaced by
   the guaranteed lint-rejected spec above. Users are pure closures over
   a precomputed truth tuple, so they are safe to call from any domain. *)
let batch_of_seed seed =
  let st = Random.State.make [| seed |] in
  List.init 20 (fun i ->
      let spec =
        if i mod 5 = 4 then broken_spec () else Fixtures.random_spec st
      in
      let user =
        match Crcore.Reference.analyze spec with
        | Some r when r.Crcore.Reference.valid -> (
            match r.Crcore.Reference.true_tuple with
            | Some t -> F.oracle (Tuple.of_array (Crcore.Spec.schema spec) t)
            | None -> F.silent)
        | _ -> F.silent
      in
      { E.label = string_of_int i; spec; user })

let same_item_results (a : E.item_result list) (b : E.item_result list) =
  List.length a = List.length b
  && List.for_all2
       (fun (x : E.item_result) (y : E.item_result) ->
         x.E.label = y.E.label && x.E.outcome = y.E.outcome)
       a b

(* The headline property: 25 batches x 20 specs = 500 random specs, each
   batch resolved sequentially and with jobs in {2, 4, 8}; every parallel
   run must return exactly the sequential results. Lint stays on, so the
   rejected specs exercise the mixed lint/solve path under parallelism. *)
let prop_parallel_equals_sequential =
  QCheck.Test.make ~count:25 ~name:"run_batch jobs>1 == jobs=1 on random spec batches"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let items = batch_of_seed seed in
      let seq_results, seq_stats = E.run_batch items in
      List.for_all
        (fun jobs ->
          (* clamp off: the property is about arbitrary schedules, so it
             must actually run the requested width even on small hosts *)
          let par_results, par_stats =
            E.run_batch ~config:{ E.default_config with jobs; clamp_jobs = false } items
          in
          same_item_results seq_results par_results
          && par_stats.E.entities = seq_stats.E.entities
          && par_stats.E.valid_entities = seq_stats.E.valid_entities
          && par_stats.E.lint_rejected = seq_stats.E.lint_rejected
          && par_stats.E.total_rounds = seq_stats.E.total_rounds)
        [ 2; 4; 8 ])

let test_parallel_streaming_order () =
  let items = batch_of_seed 42 in
  let seen = ref [] in
  let _, _ =
    E.run_batch
      ~config:{ E.default_config with jobs = 4; clamp_jobs = false }
      ~on_result:(fun ir -> seen := ir.E.label :: !seen)
      items
  in
  Alcotest.(check (list string))
    "on_result streams in input order"
    (List.map (fun (it : E.item) -> it.E.label) items)
    (List.rev !seen)

let test_parallel_stats_invariants () =
  let items = batch_of_seed 7 in
  let _, st =
    E.run_batch ~config:{ E.default_config with jobs = 4; clamp_jobs = false } items
  in
  Alcotest.(check int) "jobs recorded" 4 st.E.jobs;
  Alcotest.(check int) "jobs_requested recorded" 4 st.E.jobs_requested;
  Alcotest.(check bool) "deduce counters non-negative" true
    (st.E.deduce_sat_calls >= 0 && st.E.deduce_probes >= 0
    && st.E.deduce_model_prunes >= 0 && st.E.deduce_seeded >= 0);
  Alcotest.(check bool) "live sessions served phases" true (st.E.solvers_reused > 0);
  Alcotest.(check int) "entities" (List.length items) st.E.entities;
  Alcotest.(check int) "rebuild breakdown sums" st.E.rebuilds
    (st.E.rebuilds_renumbered + st.E.rebuilds_impure);
  Alcotest.(check bool) "hit_ratio in [0,1]" true
    (st.E.hit_ratio >= 0. && st.E.hit_ratio <= 1.);
  Alcotest.(check bool) "hit_ratio consistent" true
    (st.E.cache_hits + st.E.cache_misses = 0
    || abs_float
         (st.E.hit_ratio
         -. (float_of_int st.E.cache_hits
            /. float_of_int (st.E.cache_hits + st.E.cache_misses)))
       < 1e-9);
  Alcotest.(check bool) "phase times non-negative" true
    (st.E.times.E.lint_ms >= 0.
    && st.E.times.E.encode_ms >= 0.
    && st.E.times.E.validity_ms >= 0.
    && st.E.times.E.deduce_ms >= 0.
    && st.E.times.E.suggest_ms >= 0.)

(* Cross-phase solver reuse (one session serving validity, backbone
   deduction and the MaxSAT repair layer) must be invisible in results:
   the reusing default config and the rebuild-everything naive config
   agree on every spec, at jobs = 1 and jobs = 4 alike. Lint is off on
   both sides so the comparison is solver-path against solver-path. *)
let prop_solver_reuse_identical_under_jobs =
  QCheck.Test.make ~count:15 ~name:"solver reuse: incremental == naive at jobs in {1,4}"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let items = batch_of_seed seed in
      let base_results, _ =
        E.run_batch ~config:{ E.naive_config with jobs = 1 } items
      in
      List.for_all
        (fun jobs ->
          let r, _ =
            E.run_batch
              ~config:
                { E.default_config with lint = false; jobs; clamp_jobs = false }
              items
          in
          same_item_results base_results r)
        [ 1; 4 ])

(* The engine's cached path instantiates every encoding from a shared
   template; the naive config compiles each directly. The two must agree
   on every spec whatever the domain count or the saturate pre-phase —
   the batch-level restatement of test_encode's bit-identity property. *)
(* Answers only: [conflicts_spent] legitimately differs between solver
   strategies (how many conflicts a run burns is an accounting detail of
   the path taken, not part of the resolution), so unlike
   [same_item_results] this ignores it. *)
let same_answers (a : E.item_result list) (b : E.item_result list) =
  List.length a = List.length b
  && List.for_all2
       (fun (x : E.item_result) (y : E.item_result) ->
         x.E.label = y.E.label
         &&
         match (x.E.outcome, y.E.outcome) with
         | Ok rx, Ok ry ->
             rx.E.resolved = ry.E.resolved
             && rx.E.valid = ry.E.valid
             && rx.E.level = ry.E.level
         | Error _, Error _ -> true
         | _ -> false)
       a b

let prop_template_path_identical =
  QCheck.Test.make ~count:10
    ~name:"template-instantiated engine == naive at jobs in {1,4}, saturate on/off"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let items = batch_of_seed seed in
      let base_results, _ = E.run_batch ~config:E.naive_config items in
      List.for_all
        (fun jobs ->
          List.for_all
            (fun saturate ->
              let r, st =
                E.run_batch
                  ~config:
                    { E.default_config with jobs; clamp_jobs = false; saturate }
                  items
              in
              same_answers base_results r
              && st.E.instantiations = st.E.template_hits + st.E.template_misses)
            [ true; false ])
        [ 1; 4 ])

(* The simplifying solver — LBD clause-database reduction plus level-0
   pre/inprocessing at the engine's simplify points — must be invisible in
   resolutions: simplify on agrees with simplify off and with the naive
   rebuild-everything config on every spec, whatever the domain count and
   whether the saturation pre-phase runs. This is the batch-level guard on
   the frozen-variable contract (every engine-referenced variable is frozen
   before simplify, so no probe or selector ever hits an eliminated one). *)
let prop_simplify_identical =
  QCheck.Test.make ~count:10
    ~name:"simplify on == off == naive at jobs in {1,4}, saturate on/off"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let items = batch_of_seed seed in
      let base_results, _ = E.run_batch ~config:E.naive_config items in
      List.for_all
        (fun jobs ->
          List.for_all
            (fun saturate ->
              List.for_all
                (fun simplify ->
                  let r, _ =
                    E.run_batch
                      ~config:
                        {
                          E.default_config with
                          jobs;
                          clamp_jobs = false;
                          saturate;
                          simplify;
                        }
                      items
                  in
                  same_answers base_results r)
                [ true; false ])
            [ true; false ])
        [ 1; 4 ])

(* By default the engine caps the batch width at the machine's core
   count: over-subscribing domains is a pure slowdown, and BENCH_par
   showed a 3x one on a 1-core host. The request is still recorded. *)
let test_jobs_clamped_to_cores () =
  let items = batch_of_seed 11 in
  let cores = Parallel.Pool.recommended_jobs () in
  let _, st = E.run_batch ~config:{ E.default_config with jobs = 64 } items in
  Alcotest.(check int) "request recorded" 64 st.E.jobs_requested;
  Alcotest.(check bool) "effective width capped at cores" true
    (st.E.jobs >= 1 && st.E.jobs <= cores);
  let _, st1 = E.run_batch items in
  Alcotest.(check int) "jobs=1 unaffected" 1 st1.E.jobs;
  Alcotest.(check int) "jobs=1 request recorded" 1 st1.E.jobs_requested

(* CRSOLVE_JOBS is how CI widens the tested job counts without editing
   the suite: when set, the same parity property runs at that width. *)
let env_jobs_tests =
  match Sys.getenv_opt "CRSOLVE_JOBS" with
  | Some s when (match int_of_string_opt s with Some j -> j > 1 | None -> false) ->
      let jobs = int_of_string s in
      [
        QCheck.Test.make ~count:10
          ~name:(Printf.sprintf "run_batch jobs=%d == jobs=1 (CRSOLVE_JOBS)" jobs)
          QCheck.(int_bound 1_000_000)
          (fun seed ->
            let items = batch_of_seed seed in
            let seq_results, _ = E.run_batch items in
            let par_results, _ =
              E.run_batch ~config:{ E.default_config with jobs; clamp_jobs = false } items
            in
            same_item_results seq_results par_results);
      ]
  | _ -> []

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "covers all indices" `Quick test_pool_covers_all_indices;
          Alcotest.test_case "chunk sizes" `Quick test_pool_chunk_sizes;
          Alcotest.test_case "reuse and empty" `Quick test_pool_reuse_and_empty;
          Alcotest.test_case "lowest failure wins" `Quick test_pool_lowest_failure_wins;
          Alcotest.test_case "run_collect isolates failures" `Quick test_pool_run_collect;
          Alcotest.test_case "run_collect empty" `Quick test_pool_run_collect_empty;
          Alcotest.test_case "clamps jobs" `Quick test_pool_clamps_jobs;
        ] );
      ( "engine",
        [
          Alcotest.test_case "streaming order (jobs=4)" `Quick test_parallel_streaming_order;
          Alcotest.test_case "stats invariants (jobs=4)" `Quick test_parallel_stats_invariants;
          Alcotest.test_case "jobs clamped to cores" `Quick test_jobs_clamped_to_cores;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          (prop_parallel_equals_sequential
           :: prop_solver_reuse_identical_under_jobs
           :: prop_template_path_identical
           :: prop_simplify_identical
           :: env_jobs_tests) );
    ]
