(* The static saturation engine (Saturate): soundness of the closure
   against the SAT backbone, completeness in Paper mode, certificate
   verification by the independent checker, JSON round-trips with a
   tamper rejection, and the engine pre-phase's bit-identical-results
   guarantee at jobs 1 and 4. *)

module E = Crcore.Encode
module S = Crcore.Saturate
module D = Crcore.Deduce
module En = Crcore.Engine
module F = Crcore.Framework

let parse = Currency.Parser.parse_exn

let mk_cfd lhs (battr, bval) =
  Cfd.Constant_cfd.make
    (List.map (fun (a, v) -> (a, Value.of_string v)) lhs)
    (battr, Value.of_string bval)

let mk ?(orders = []) ?(sigma = []) ?(gamma = []) () =
  Crcore.Spec.make Fixtures.edith_entity ~orders ~sigma ~gamma

(* a fact over the closure's own coding, by attribute/value names *)
let fact cl name v1 v2 =
  let coding = S.coding cl in
  let schema = Crcore.Coding.schema coding in
  let a = Schema.index schema name in
  {
    E.attr = a;
    lo = Crcore.Coding.vid coding a (Value.of_string v1);
    hi = Crcore.Coding.vid coding a (Value.of_string v2);
  }

(* ---- unit: the paper's Edith entity ---- *)

let test_edith_closure () =
  let spec = Fixtures.edith_spec () in
  let cl = S.of_spec spec in
  Alcotest.(check bool) "valid: no refutation" true (S.refutation cl = None);
  Alcotest.(check bool) "Paper closure is complete" true (S.complete cl);
  Alcotest.(check bool) "phi1 axiom" true (S.mem cl (fact cl "status" "working" "retired"));
  Alcotest.(check bool) "phi2 axiom" true (S.mem cl (fact cl "status" "retired" "deceased"));
  Alcotest.(check bool) "transitivity" true (S.mem cl (fact cl "status" "working" "deceased"));
  Alcotest.(check bool) "phi5 modus ponens" true (S.mem cl (fact cl "job" "nurse" "n/a"));
  Alcotest.(check bool) "no invented fact" false (S.mem cl (fact cl "city" "LA" "NY"));
  Alcotest.(check int) "n_facts = |facts|" (List.length (S.facts cl)) (S.n_facts cl);
  Alcotest.(check int) "one var per fact" (S.n_facts cl) (List.length (S.fact_vars cl));
  Alcotest.(check int) "one lit per fact" (S.n_facts cl) (List.length (S.unit_lits cl))

let test_edith_certificates () =
  let spec = Fixtures.edith_spec () in
  let cl = S.of_spec spec in
  List.iter
    (fun f ->
      match S.certificate cl f with
      | None -> Alcotest.fail "closure fact without a certificate"
      | Some cert -> (
          match S.verify spec cert with
          | Ok () -> ()
          | Error m -> Alcotest.failf "certificate rejected: %s" m))
    (S.facts cl);
  (* the renderer produces a chain ending in the goal line *)
  match S.certificate cl (fact cl "job" "nurse" "n/a") with
  | None -> Alcotest.fail "no certificate for the MP fact"
  | Some cert ->
      let s = Format.asprintf "%a" (S.pp_cert spec) cert in
      Alcotest.(check bool) "mentions sigma" true
        (String.length s > 0
        &&
        let re = "sigma[" in
        let n = String.length s and m = String.length re in
        let rec has i = i + m <= n && (String.sub s i m = re || has (i + 1)) in
        has 0)

let phi = parse {|t1[status] = "working" & t2[status] = "retired" -> prec(status)|}
let phi_mirror = parse {|t1[status] = "retired" & t2[status] = "working" -> prec(status)|}

let test_refutation () =
  let spec = mk ~sigma:[ phi; phi_mirror ] () in
  let cl = S.of_spec spec in
  Alcotest.(check bool) "refuted" true (S.refutation cl <> None);
  Alcotest.(check bool) "not complete" false (S.complete cl);
  Alcotest.(check bool) "SAT agrees" false (Crcore.Validity.is_valid spec);
  match S.refutation_certificate cl with
  | None -> Alcotest.fail "refutation without a certificate"
  | Some cert -> (
      Alcotest.(check bool) "goal is a contradiction" true
        (match cert.S.goal with S.Derived _ -> false | _ -> true);
      match S.verify spec cert with
      | Ok () -> ()
      | Error m -> Alcotest.failf "refutation certificate rejected: %s" m)

let test_exact_total_rule () =
  (* name's adom is {null, "Edith Shain"}; the CFD's RHS "Paris" never
     occurs, so its veto has the singleton premise null < Edith. On the
     real encoding that premise is a null-lowest axiom (the veto fires: a
     refutation); in a hypothetical closure with that unit dropped, Exact
     totality turns the veto into the reverse fact — the Total rule *)
  let spec = mk ~gamma:[ mk_cfd [ ("name", "Edith Shain") ] ("city", "Paris") ] () in
  let cl = S.of_spec ~mode:E.Exact spec in
  Alcotest.(check bool) "real encoding: fired veto refutes" true (S.refutation cl <> None);
  let coding = S.coding cl in
  let a = Schema.index (Crcore.Coding.schema coding) "name" in
  let null_id = Crcore.Coding.vid coding a Value.Null in
  let edith_id = Crcore.Coding.vid coding a (Value.of_string "Edith Shain") in
  let f0 = { E.attr = a; lo = null_id; hi = edith_id } in
  let rev_f = { E.attr = a; lo = edith_id; hi = null_id } in
  let parts = E.parts spec in
  let drop_unit f src = src = E.From_order && f = f0 in
  Alcotest.(check bool) "Exact derives the reverse via totality" true
    (S.derives ~mode:E.Exact ~drop_unit parts rev_f);
  Alcotest.(check bool) "Paper mode cannot" false (S.derives ~mode:E.Paper ~drop_unit parts rev_f);
  (* the independent verifier accepts exactly the well-formed Total step *)
  let total_cert cmode k =
    {
      S.cmode;
      goal = S.Derived rev_f;
      chain = [ { S.fact = rev_f; rule = S.Total k; premises = [] } ];
    }
  in
  Alcotest.(check bool) "verifier accepts the Total step" true
    (S.verify spec (total_cert E.Exact 0) = Ok ());
  Alcotest.(check bool) "Total step rejected outside Exact mode" true
    (match S.verify spec (total_cert E.Paper 0) with Error _ -> true | Ok () -> false);
  let live = mk ~gamma:[ mk_cfd [ ("name", "Edith Shain") ] ("city", "LA") ] () in
  Alcotest.(check bool) "Total step rejected when the CFD is not vetoed" true
    (match S.verify live (total_cert E.Exact 0) with Error _ -> true | Ok () -> false)

(* ---- certificates: JSON round-trip and tampering ---- *)

let mp_cert () =
  let spec = Fixtures.edith_spec () in
  let cl = S.of_spec spec in
  match S.certificate cl (fact cl "job" "nurse" "n/a") with
  | Some c -> (spec, c)
  | None -> Alcotest.fail "expected a certificate for job: nurse < n/a"

let test_json_roundtrip () =
  let spec, cert = mp_cert () in
  let json = S.cert_to_json cert in
  match S.cert_of_json json with
  | Error m -> Alcotest.failf "round-trip decode failed: %s" m
  | Ok cert' ->
      Alcotest.(check bool) "structurally equal" true (cert = cert');
      Alcotest.(check bool) "decoded certificate verifies" true (S.verify spec cert' = Ok ());
      (* refutation certificates round-trip too *)
      let rspec = mk ~sigma:[ phi; phi_mirror ] () in
      (match S.refutation_certificate (S.of_spec rspec) with
      | None -> Alcotest.fail "expected a refutation certificate"
      | Some rc ->
          Alcotest.(check bool) "refutation round-trip" true
            (S.cert_of_json (S.cert_to_json rc) = Ok rc));
      Alcotest.(check bool) "garbage rejected" true
        (match S.cert_of_json "{\"mode\":" with Error _ -> true | Ok _ -> false)

(* replace the first occurrence of [old_s] in [s] *)
let replace_first s old_s new_s =
  let n = String.length s and m = String.length old_s in
  let rec find i = if i + m > n then None else if String.sub s i m = old_s then Some i else find (i + 1) in
  match find 0 with
  | None -> None
  | Some i -> Some (String.sub s 0 i ^ new_s ^ String.sub s (i + m) (n - i - m))

let test_tamper_rejected () =
  let spec, cert = mp_cert () in
  (* the MP step cites sigma[4] (prec(status) -> prec(job)); pointing it
     at sigma[3] (the kids comparison) must fail independent checking *)
  let json = S.cert_to_json cert in
  (match replace_first json "\"src\":\"sigma\",\"idx\":4" "\"src\":\"sigma\",\"idx\":3" with
  | None -> Alcotest.fail "expected the certificate to cite sigma[4]"
  | Some tampered -> (
      match S.cert_of_json tampered with
      | Error m -> Alcotest.failf "tampered JSON should still parse: %s" m
      | Ok c ->
          Alcotest.(check bool) "swapped constraint id rejected" true
            (match S.verify spec c with Error _ -> true | Ok () -> false)));
  (* and an in-memory tamper: claim a fact the chain never derives *)
  let bogus = { cert with S.goal = S.Derived { E.attr = 0; lo = 0; hi = 0 } } in
  Alcotest.(check bool) "forged goal rejected" true
    (match S.verify spec bogus with Error _ -> true | Ok () -> false);
  (* Assumed steps never verify: hypotheses are not proofs *)
  let assumed =
    { cert with S.chain = List.map (fun s -> { s with S.rule = S.Assumed }) cert.S.chain }
  in
  Alcotest.(check bool) "Assumed steps rejected" true
    (match S.verify spec assumed with Error _ -> true | Ok () -> false)

(* ---- the engine pre-phase ---- *)

let test_engine_prephase_stats () =
  let r, st = En.resolve ~user:F.silent (Fixtures.edith_spec ()) in
  Alcotest.(check bool) "resolved" true r.En.valid;
  Alcotest.(check bool) "static facts counted" true (st.En.static_facts > 0);
  Alcotest.(check bool) "probes avoided" true (st.En.probes_avoided > 0);
  Alcotest.(check bool) "saturate phase timed" true (st.En.times.En.saturate_ms >= 0.);
  let r', st' =
    En.resolve ~config:{ En.default_config with saturate = false } ~user:F.silent
      (Fixtures.edith_spec ())
  in
  Alcotest.(check int) "off: no static facts" 0 st'.En.static_facts;
  Alcotest.(check int) "off: no probes avoided" 0 st'.En.probes_avoided;
  Alcotest.(check bool) "identical results" true
    (r.En.resolved = r'.En.resolved && r.En.valid = r'.En.valid && r.En.rounds = r'.En.rounds)

let test_template_memo () =
  (* edith and george share the same physical Σ list: the second
     saturation must hit the per-template plan memo *)
  ignore (S.of_spec (Fixtures.edith_spec ()));
  let h0, _ = S.template_stats () in
  ignore (S.of_spec (Fixtures.george_spec ()));
  let h1, _ = S.template_stats () in
  Alcotest.(check bool) "plan memo hit" true (h1 > h0)

(* ---- properties ---- *)

(* closure facts land inside the deduced order of the complete deducer *)
let closure_subset_of cl (d : D.t) =
  List.for_all (fun f -> D.lt d ~attr:f.E.attr f.E.lo f.E.hi) (S.facts cl)

(* every backbone pair is in the closure (both are transitively closed) *)
let backbone_subset_of (d : D.t) cl =
  let ok = ref true in
  Array.iteri
    (fun a o ->
      List.iter
        (fun (lo, hi) -> if not (S.mem cl { E.attr = a; lo; hi }) then ok := false)
        (Porder.Strict_order.pairs o))
    d.D.od;
  !ok

let prop_closure_sound_complete_and_certified =
  (* the headline: on ≥1000 random specifications, the Paper-mode closure
     is a subset of the backbone, equals it exactly when complete, finds a
     refutation iff the encoding is unsatisfiable — and every closure fact
     carries a certificate the independent verifier accepts *)
  QCheck.Test.make ~count:1000
    ~name:"Paper closure == backbone when complete; refutation iff unsat; certificates verify"
    Fixtures.qcheck_spec (fun spec ->
      let enc = E.encode spec in
      let cl = S.of_encode enc in
      let valid = Crcore.Validity.check enc in
      let certified =
        List.for_all
          (fun f ->
            match S.certificate cl f with
            | None -> false
            | Some c -> S.verify spec c = Ok ())
          (S.facts cl)
      in
      let refutation_iff_unsat = (S.refutation cl = None) = valid in
      let vs_backbone =
        if not valid then true
        else begin
          let b = D.backbone enc in
          closure_subset_of cl b && (S.complete cl && backbone_subset_of b cl)
        end
      in
      certified && refutation_iff_unsat && vs_backbone)

let prop_exact_closure_sound =
  (* Exact mode is conservatively incomplete: subset of the backbone,
     refutations still sound, certificates still check *)
  QCheck.Test.make ~count:300 ~name:"Exact closure sound: subset of backbone, certified"
    Fixtures.qcheck_spec (fun spec ->
      let enc = E.encode ~mode:E.Exact spec in
      let cl = S.of_encode enc in
      let valid = Crcore.Validity.check enc in
      let refutation_sound = S.refutation cl = None || not valid in
      let certified =
        List.for_all
          (fun f ->
            match S.certificate cl f with
            | None -> false
            | Some c -> S.verify spec c = Ok ())
          (S.facts cl)
      in
      refutation_sound && certified
      && (if valid then closure_subset_of cl (D.backbone enc) else true))

let same_result (a : En.result) (b : En.result) =
  a.En.resolved = b.En.resolved
  && a.En.valid = b.En.valid
  && a.En.rounds = b.En.rounds
  && a.En.per_round_known = b.En.per_round_known

let prop_engine_results_identical =
  QCheck.Test.make ~count:300 ~name:"engine saturate pre-phase never changes results"
    Fixtures.qcheck_spec (fun spec ->
      let user =
        match Crcore.Reference.analyze spec with
        | Some r when r.Crcore.Reference.valid -> (
            match r.Crcore.Reference.true_tuple with
            | Some t -> F.oracle (Tuple.of_array (Crcore.Spec.schema spec) t)
            | None -> F.silent)
        | _ -> F.silent
      in
      let on, _ = En.resolve ~config:En.default_config ~user spec in
      let off, _ =
        En.resolve ~config:{ En.default_config with saturate = false } ~user spec
      in
      same_result on off)

let prop_batch_identical_across_jobs =
  (* bit-identical batches with the pre-phase on and off, sequential and
     on 4 domains *)
  QCheck.Test.make ~count:6 ~name:"run_batch: saturate on/off identical at jobs 1 and 4"
    QCheck.(int_range 0 100)
    (fun seed ->
      let ds = Datagen.Person.quick ~seed ~n_entities:4 ~size:7 () in
      let items () =
        List.map
          (fun (c : Datagen.Types.case) ->
            {
              En.label = string_of_int c.Datagen.Types.id;
              spec = Datagen.Types.spec_of ds c;
              user = F.oracle c.Datagen.Types.truth;
            })
          ds.Datagen.Types.cases
      in
      let run saturate jobs =
        let results, stats =
          En.run_batch ~config:{ En.default_config with saturate; jobs } (items ())
        in
        (results, stats)
      in
      let base, base_stats = run true 1 in
      let outcomes (rs : En.item_result list) =
        List.map
          (fun (ir : En.item_result) ->
            match ir.En.outcome with
            | Ok r -> (ir.En.label, r.En.resolved, r.En.valid, r.En.rounds)
            | Error e -> Alcotest.failf "entity %s raised: %s" ir.En.label e.En.exn)
          rs
      in
      let same rs = outcomes rs = outcomes base in
      base_stats.En.static_facts >= 0
      && List.for_all
           (fun (saturate, jobs) -> same (fst (run saturate jobs)))
           [ (false, 1); (true, 4); (false, 4) ])

let () =
  Alcotest.run "saturate"
    [
      ( "closure",
        [
          Alcotest.test_case "Edith closure facts" `Quick test_edith_closure;
          Alcotest.test_case "Edith certificates verify" `Quick test_edith_certificates;
          Alcotest.test_case "static refutation" `Quick test_refutation;
          Alcotest.test_case "Exact-mode Total rule" `Quick test_exact_total_rule;
        ] );
      ( "certificates",
        [
          Alcotest.test_case "JSON round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "tampered certificates rejected" `Quick test_tamper_rejected;
        ] );
      ( "engine",
        [
          Alcotest.test_case "pre-phase stats" `Quick test_engine_prephase_stats;
          Alcotest.test_case "template plan memo" `Quick test_template_memo;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_closure_sound_complete_and_certified;
            prop_exact_closure_sound;
            prop_engine_results_identical;
            prop_batch_identical_across_jobs;
          ] );
    ]
