(* Budgeted solving and fault isolation: the graceful-degradation ladder
   (Exact → PartialDeduce → PickFallback), solver conflict budgets, the
   deterministic fault-injection harness, and per-entity error capture in
   run_batch — all verified at jobs = 1 and jobs = 4. *)

module F = Crcore.Framework
module E = Crcore.Engine
module Faults = Crcore.Faults
module S = Sat.Solver

(* ---- Sat.Solver budget units ---- *)

let edith_cnf () =
  (Crcore.Encode.encode ~mode:Crcore.Encode.Paper (Fixtures.edith_spec ())).Crcore.Encode.cnf

let test_solver_budget_zero_unknown () =
  let s = S.create () in
  S.add_cnf s (edith_cnf ());
  S.set_budget ~conflicts:0 s;
  Alcotest.(check bool) "budget 0 → Unknown" true (S.solve_limited s = S.Limited.Unknown);
  Alcotest.(check bool) "budget reported spent" true (S.budget_exhausted s)

let test_solver_resumable_after_unknown () =
  let s = S.create () in
  S.add_cnf s (edith_cnf ());
  S.set_budget ~conflicts:0 s;
  let first = S.solve_limited s in
  S.clear_budget s;
  let second = S.solve_limited s in
  Alcotest.(check bool) "interrupted first" true (first = S.Limited.Unknown);
  (* Φ(Se) of the running example is satisfiable: the solver must finish
     the job once the budget is lifted, and its model must be usable *)
  Alcotest.(check bool) "finishes after clear_budget" true (second = S.Limited.Sat);
  Alcotest.(check bool) "model available" true (Array.length (S.model s) > 0)

let test_solver_budget_generous_agrees () =
  let s1 = S.create () in
  S.add_cnf s1 (edith_cnf ());
  let reference = S.solve s1 in
  let s2 = S.create () in
  S.add_cnf s2 (edith_cnf ());
  S.set_budget ~conflicts:1_000_000 s2;
  let limited = S.solve_limited s2 in
  Alcotest.(check bool) "unhit budget changes nothing" true
    (match (reference, limited) with
    | S.Sat, S.Limited.Sat | S.Unsat, S.Limited.Unsat -> true
    | _ -> false)

let test_solver_solve_ignores_budget () =
  let s = S.create () in
  S.add_cnf s (edith_cnf ());
  S.set_budget ~conflicts:0 s;
  Alcotest.(check bool) "solve runs to completion despite budget" true (S.solve s = S.Sat)

(* ---- soundness under degradation: budgeted deduction ⊆ unbudgeted ---- *)

let subset_of (cut : Value.t option array) (full : Value.t option array) =
  Array.length cut = Array.length full
  && Array.for_all2 (fun c f -> c = None || c = f) cut full

let prop_budgeted_backbone_subset =
  QCheck.Test.make ~count:80
    ~name:"budgeted backbone facts are a sound subset of the unbudgeted run"
    QCheck.(pair Fixtures.qcheck_spec (int_bound 40))
    (fun (spec, budget) ->
      let enc = Crcore.Encode.encode ~mode:Crcore.Encode.Paper spec in
      let full = Crcore.Deduce.backbone enc in
      let cut = Crcore.Deduce.backbone ~budget enc in
      let fv = Crcore.Deduce.true_values full in
      let cv = Crcore.Deduce.true_values cut in
      subset_of cv fv
      (* an uninterrupted budgeted run is the unbudgeted run *)
      && (not cut.Crcore.Deduce.stats.Crcore.Deduce.complete || cv = fv))

let prop_engine_degraded_facts_sound =
  (* engine-level: under max_degrade = PartialDeduce, every fact a
     budget-degraded run reports for a genuinely valid spec is one the
     exact run also proves (PickFallback is excluded by construction —
     its values are heuristic picks, not proofs) *)
  QCheck.Test.make ~count:50
    ~name:"degraded engine facts ⊆ exact facts (max_degrade = partial)"
    QCheck.(pair Fixtures.qcheck_spec (int_bound 30))
    (fun (spec, budget) ->
      let exact, _ = E.resolve ~user:F.silent spec in
      let cut, _ =
        E.resolve
          ~config:
            {
              E.default_config with
              budget_conflicts = Some budget;
              max_degrade = E.PartialDeduce;
            }
          ~user:F.silent spec
      in
      E.level_rank cut.E.level <= E.level_rank E.PartialDeduce
      && ((not exact.E.valid) || (not cut.E.valid)
         || subset_of cut.E.resolved exact.E.resolved))

(* ---- the ladder under a spent budget ---- *)

let budget0 max_degrade =
  { E.default_config with budget_conflicts = Some 0; max_degrade }

let test_ladder_pick_fallback () =
  let r, _ = E.resolve ~config:(budget0 E.PickFallback) ~user:F.silent (Fixtures.edith_spec ()) in
  Alcotest.(check bool) "level pick" true (r.E.level = E.PickFallback);
  Alcotest.(check bool) "reason conflicts@validity" true
    (r.E.degrade_reason = Some { E.cause = E.Conflicts; phase = E.Validity_p });
  Alcotest.(check bool) "valid (heuristic answer)" true r.E.valid;
  Alcotest.(check bool) "Pick resolves every attribute" true
    (Array.for_all (fun v -> v <> None) r.E.resolved);
  (* Pick is seeded deterministically: the fallback answer is reproducible *)
  let r2, _ =
    E.resolve ~config:(budget0 E.PickFallback) ~user:F.silent (Fixtures.edith_spec ())
  in
  Alcotest.(check bool) "fallback deterministic" true (r.E.resolved = r2.E.resolved)

let test_ladder_partial_cap () =
  let r, _ =
    E.resolve ~config:(budget0 E.PartialDeduce) ~user:F.silent (Fixtures.edith_spec ())
  in
  Alcotest.(check bool) "level partial" true (r.E.level = E.PartialDeduce);
  Alcotest.(check bool) "reason recorded" true (r.E.degrade_reason <> None);
  (* the partial answer must be sound: a subset of the exact run's facts *)
  let exact, _ = E.resolve ~user:F.silent (Fixtures.edith_spec ()) in
  Alcotest.(check bool) "partial facts ⊆ exact facts" true
    (subset_of r.E.resolved exact.E.resolved)

let test_ladder_exact_cap () =
  let r, _ = E.resolve ~config:(budget0 E.Exact) ~user:F.silent (Fixtures.edith_spec ()) in
  Alcotest.(check bool) "level stays exact" true (r.E.level = E.Exact);
  Alcotest.(check bool) "reason distinguishes from proven invalidity" true
    (r.E.degrade_reason <> None);
  Alcotest.(check bool) "conservative: nothing claimed" true
    ((not r.E.valid) && Array.for_all (fun v -> v = None) r.E.resolved)

let test_wall_budget_degrades () =
  let config = { E.default_config with budget_ms = Some 0. } in
  let r, _ = E.resolve ~config ~user:F.silent (Fixtures.edith_spec ()) in
  Alcotest.(check bool) "wall reason" true
    (match r.E.degrade_reason with Some { E.cause = E.Wall; _ } -> true | _ -> false);
  Alcotest.(check bool) "degraded to pick" true (r.E.level = E.PickFallback)

let prop_never_below_max_degrade =
  QCheck.Test.make ~count:60 ~name:"achieved level never exceeds max_degrade"
    QCheck.(triple Fixtures.qcheck_spec (int_bound 25) (int_bound 2))
    (fun (spec, budget, cap) ->
      let max_degrade =
        match cap with 0 -> E.Exact | 1 -> E.PartialDeduce | _ -> E.PickFallback
      in
      let r, _ =
        E.resolve
          ~config:{ E.default_config with budget_conflicts = Some budget; max_degrade }
          ~user:F.silent spec
      in
      E.level_rank r.E.level <= E.level_rank max_degrade
      (* degraded levels always carry their reason *)
      && (r.E.level = E.Exact || r.E.degrade_reason <> None))

(* ---- fault injection and per-entity isolation ---- *)

let batch n =
  List.init n (fun i ->
      if i mod 2 = 0 then
        { E.label = Printf.sprintf "e%d" i;
          spec = Fixtures.edith_spec ();
          user = F.oracle Fixtures.edith_truth }
      else
        { E.label = Printf.sprintf "e%d" i;
          spec = Fixtures.george_spec ();
          user = F.oracle Fixtures.george_truth })

(* outcome modulo backtrace (raise sites differ between domains) and
   per-entity stats (timings are never comparable) *)
let outcome_key (ir : E.item_result) =
  ( ir.E.label,
    match ir.E.outcome with
    | Ok r -> Ok r
    | Error e -> Error (e.E.exn, e.E.phase) )

let run_jobs items ~jobs config =
  let results, stats =
    E.run_batch ~config:{ config with E.jobs; clamp_jobs = false } items
  in
  (List.map outcome_key results, stats)

let test_injected_raise_per_point () =
  let clean, _ = run_jobs (batch 6) ~jobs:1 E.default_config in
  (* target e1 (George): his resolution needs interaction rounds, so all
     four phases — including the suggestion's MaxSAT layer — actually run *)
  List.iter
    (fun (point, expected_phase) ->
      Faults.arm
        [ { Faults.label = Some "e1"; point; nth = 1; action = Faults.Raise "boom" } ];
      Fun.protect ~finally:Faults.disarm (fun () ->
          let per_jobs =
            List.map
              (fun jobs ->
                let keys, stats = run_jobs (batch 6) ~jobs E.default_config in
                Alcotest.(check int)
                  (Printf.sprintf "%s jobs=%d: one error" (Faults.point_to_string point)
                     jobs)
                  1 stats.E.errors;
                List.iter2
                  (fun (label, outcome) (clabel, clean_outcome) ->
                    Alcotest.(check string) "label order" clabel label;
                    if label = "e1" then
                      match outcome with
                      | Error (exn, phase) ->
                          Alcotest.(check bool)
                            (Printf.sprintf "%s: phase attributed"
                               (Faults.point_to_string point))
                            true
                            (phase = expected_phase
                            && String.length exn > 0)
                      | Ok _ ->
                          Alcotest.failf "%s: e1 should have errored"
                            (Faults.point_to_string point)
                    else
                      Alcotest.(check bool)
                        (Printf.sprintf "%s jobs=%d: %s isolated"
                           (Faults.point_to_string point) jobs label)
                        true
                        (outcome = clean_outcome))
                  keys clean;
                keys)
              [ 1; 4 ]
          in
          match per_jobs with
          | [ k1; k4 ] ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: jobs=1 ≡ jobs=4" (Faults.point_to_string point))
                true (k1 = k4)
          | _ -> assert false))
    [
      (Faults.Encode, E.Encode_p);
      (Faults.Solve, E.Validity_p);
      (Faults.Deduce, E.Deduce_p);
      (Faults.Maxsat, E.Suggest_p);
    ]

let test_injected_burn_consumes_budget () =
  (* a Burn of the whole allowance at the solve boundary must trip the
     conflict checkpoint exactly like real solver work would *)
  Faults.arm
    [ { Faults.label = Some "e0"; point = Faults.Solve; nth = 1; action = Faults.Burn 500 } ];
  Fun.protect ~finally:Faults.disarm (fun () ->
      let config = { E.default_config with budget_conflicts = Some 500 } in
      let results, stats = E.run_batch ~config (batch 4) in
      Alcotest.(check int) "no errors" 0 stats.E.errors;
      match (List.hd results).E.outcome with
      | Ok r ->
          Alcotest.(check bool) "e0 degraded to pick" true (r.E.level = E.PickFallback);
          Alcotest.(check bool) "burnt conflicts are accounted" true
            (r.E.conflicts_spent >= 500)
      | Error _ -> Alcotest.fail "burn must degrade, not crash")

let test_fail_fast_propagates () =
  List.iter
    (fun jobs ->
      Faults.arm
        [ { Faults.label = Some "e1"; point = Faults.Solve; nth = 1; action = Faults.Raise "fatal" } ];
      Fun.protect ~finally:Faults.disarm (fun () ->
          let config =
            { E.default_config with fail_fast = true; jobs; clamp_jobs = false }
          in
          let raised =
            try
              ignore (E.run_batch ~config (batch 4));
              false
            with Faults.Injected "fatal" -> true
          in
          Alcotest.(check bool)
            (Printf.sprintf "jobs=%d: fail_fast re-raises" jobs)
            true raised))
    [ 1; 4 ]

(* ---- the acceptance scenario: a poisoned batch completes ---- *)

let test_poisoned_batch_completes () =
  (* e7 "hangs" (injected budget exhaustion at the solve boundary — the
     stand-in for a solve that would blow way past its conflict budget)
     and e13 crashes outright; all 18 other entities must finish exactly
     as in a clean run, at jobs = 1 and jobs = 4 with the same outcomes *)
  let config = { E.default_config with budget_conflicts = Some 20_000 } in
  let clean, _ = run_jobs (batch 20) ~jobs:1 config in
  Faults.arm
    [
      { Faults.label = Some "e7"; point = Faults.Solve; nth = 1; action = Faults.Exhaust };
      { Faults.label = Some "e13"; point = Faults.Solve; nth = 1; action = Faults.Raise "crash" };
    ];
  Fun.protect ~finally:Faults.disarm (fun () ->
      let per_jobs =
        List.map
          (fun jobs ->
            let keys, stats = run_jobs (batch 20) ~jobs config in
            Alcotest.(check int) (Printf.sprintf "jobs=%d: all entities" jobs) 20
              stats.E.entities;
            Alcotest.(check int) (Printf.sprintf "jobs=%d: one error" jobs) 1 stats.E.errors;
            Alcotest.(check int)
              (Printf.sprintf "jobs=%d: one pick degradation" jobs)
              1 stats.E.degraded_pick;
            Alcotest.(check bool)
              (Printf.sprintf "jobs=%d: budget exhaustion counted" jobs)
              true
              (stats.E.budget_exhausted >= 1);
            List.iter2
              (fun (label, outcome) (_, clean_outcome) ->
                match label with
                | "e7" -> (
                    match outcome with
                    | Ok r ->
                        Alcotest.(check bool) "e7 fell to Pick" true
                          (r.E.level = E.PickFallback
                          && r.E.degrade_reason
                             = Some { E.cause = E.Conflicts; phase = E.Validity_p })
                    | Error _ -> Alcotest.fail "e7 should degrade, not error")
                | "e13" -> (
                    match outcome with
                    | Error (_, phase) ->
                        Alcotest.(check bool) "e13 errored in validity" true
                          (phase = E.Validity_p)
                    | Ok _ -> Alcotest.fail "e13 should have errored")
                | _ ->
                    Alcotest.(check bool)
                      (Printf.sprintf "jobs=%d: %s untouched" jobs label)
                      true (outcome = clean_outcome))
              keys clean;
            keys)
          [ 1; 4 ]
      in
      match per_jobs with
      | [ k1; k4 ] ->
          Alcotest.(check bool) "poisoned batch: jobs=1 ≡ jobs=4" true (k1 = k4)
      | _ -> assert false)

let test_disarmed_batches_unaffected () =
  (* armed-then-disarmed plans must leave no residue *)
  Faults.arm
    [ { Faults.label = None; point = Faults.Solve; nth = 1; action = Faults.Raise "x" } ];
  Faults.disarm ();
  Alcotest.(check bool) "disarmed" false (Faults.armed ());
  let _, stats = E.run_batch (batch 4) in
  Alcotest.(check int) "no errors" 0 stats.E.errors;
  Alcotest.(check int) "no degradations" 0
    (stats.E.degraded_partial + stats.E.degraded_pick)

let () =
  Alcotest.run "robustness"
    [
      ( "solver budgets",
        [
          Alcotest.test_case "budget 0 → Unknown" `Quick test_solver_budget_zero_unknown;
          Alcotest.test_case "resumable after Unknown" `Quick
            test_solver_resumable_after_unknown;
          Alcotest.test_case "generous budget agrees" `Quick
            test_solver_budget_generous_agrees;
          Alcotest.test_case "solve ignores budgets" `Quick test_solver_solve_ignores_budget;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "pick fallback" `Quick test_ladder_pick_fallback;
          Alcotest.test_case "partial cap" `Quick test_ladder_partial_cap;
          Alcotest.test_case "exact cap" `Quick test_ladder_exact_cap;
          Alcotest.test_case "wall budget degrades" `Quick test_wall_budget_degrades;
        ] );
      ( "fault isolation",
        [
          Alcotest.test_case "raise at each point, jobs in {1,4}" `Quick
            test_injected_raise_per_point;
          Alcotest.test_case "burn consumes budget" `Quick test_injected_burn_consumes_budget;
          Alcotest.test_case "fail_fast propagates" `Quick test_fail_fast_propagates;
          Alcotest.test_case "poisoned batch completes" `Quick test_poisoned_batch_completes;
          Alcotest.test_case "disarm leaves no residue" `Quick
            test_disarmed_batches_unaffected;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_budgeted_backbone_subset;
            prop_engine_degraded_facts_sound;
            prop_never_below_max_degrade;
          ] );
    ]
