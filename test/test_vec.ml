(* Vec and Idx_heap: the solver's containers. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_push_pop () =
  let v = Sat.Vec.create ~dummy:0 in
  check_bool "empty" true (Sat.Vec.is_empty v);
  for i = 0 to 99 do
    Sat.Vec.push v i
  done;
  check_int "size" 100 (Sat.Vec.size v);
  check_int "get 42" 42 (Sat.Vec.get v 42);
  check_int "last" 99 (Sat.Vec.last v);
  check_int "pop" 99 (Sat.Vec.pop v);
  check_int "size after pop" 99 (Sat.Vec.size v)

let test_shrink_clear () =
  let v = Sat.Vec.of_list [ 1; 2; 3; 4; 5 ] ~dummy:0 in
  Sat.Vec.shrink v 2;
  Alcotest.(check (list int)) "shrunk" [ 1; 2 ] (Sat.Vec.to_list v);
  Sat.Vec.clear v;
  check_bool "cleared" true (Sat.Vec.is_empty v)

let test_swap_remove () =
  let v = Sat.Vec.of_list [ 10; 20; 30; 40 ] ~dummy:0 in
  Sat.Vec.swap_remove v 1;
  Alcotest.(check (list int)) "swap removed" [ 10; 40; 30 ] (Sat.Vec.to_list v)

let test_grow_to () =
  let v = Sat.Vec.create ~dummy:(-1) in
  Sat.Vec.grow_to v 5 7;
  Alcotest.(check (list int)) "grown" [ 7; 7; 7; 7; 7 ] (Sat.Vec.to_list v);
  Sat.Vec.grow_to v 3 9;
  check_int "no shrink on grow_to" 5 (Sat.Vec.size v)

let test_bounds () =
  let v = Sat.Vec.of_list [ 1 ] ~dummy:0 in
  Alcotest.check_raises "get out of bounds" (Invalid_argument "Vec: index 1 out of bounds (size 1)")
    (fun () -> ignore (Sat.Vec.get v 1));
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty") (fun () ->
      let v = Sat.Vec.create ~dummy:0 in
      ignore (Sat.Vec.pop v))

let test_filter_in_place () =
  let v = Sat.Vec.of_list [ 1; 2; 3; 4; 5; 6 ] ~dummy:0 in
  Sat.Vec.filter_in_place (fun x -> x mod 2 = 0) v;
  Alcotest.(check (list int)) "keeps order" [ 2; 4; 6 ] (Sat.Vec.to_list v);
  Sat.Vec.filter_in_place (fun _ -> true) v;
  Alcotest.(check (list int)) "keep all" [ 2; 4; 6 ] (Sat.Vec.to_list v);
  Sat.Vec.filter_in_place (fun _ -> false) v;
  check_bool "drop all" true (Sat.Vec.is_empty v);
  (* freed slots are reset to the dummy so filtered-out elements are not
     retained (matters when elements are heap-allocated clauses) *)
  let v = Sat.Vec.of_list [ "a"; "b"; "c" ] ~dummy:"" in
  Sat.Vec.filter_in_place (fun x -> x = "b") v;
  Sat.Vec.push v "d";
  Sat.Vec.push v "e";
  Alcotest.(check (list string)) "reusable after filter" [ "b"; "d"; "e" ] (Sat.Vec.to_list v)

let test_filter_in_place_random () =
  let st = Random.State.make [| 23 |] in
  for _ = 1 to 100 do
    let n = Random.State.int st 60 in
    let xs = List.init n (fun _ -> Random.State.int st 50) in
    let v = Sat.Vec.of_list xs ~dummy:(-1) in
    let p x = x mod 3 <> 0 in
    Sat.Vec.filter_in_place p v;
    Alcotest.(check (list int)) "matches List.filter" (List.filter p xs) (Sat.Vec.to_list v)
  done

let test_fold_iter () =
  let v = Sat.Vec.of_list [ 1; 2; 3 ] ~dummy:0 in
  check_int "fold sum" 6 (Sat.Vec.fold ( + ) 0 v);
  let acc = ref [] in
  Sat.Vec.iter (fun x -> acc := x :: !acc) v;
  Alcotest.(check (list int)) "iter order" [ 3; 2; 1 ] !acc;
  check_bool "exists" true (Sat.Vec.exists (fun x -> x = 2) v);
  check_bool "not exists" false (Sat.Vec.exists (fun x -> x = 9) v)

let test_heap_order () =
  let score = [| 5.; 1.; 9.; 3.; 7. |] in
  let h = Sat.Idx_heap.create ~score:(fun k -> score.(k)) in
  List.iter (Sat.Idx_heap.insert h) [ 0; 1; 2; 3; 4 ];
  let order = List.init 5 (fun _ -> Sat.Idx_heap.pop_max h) in
  Alcotest.(check (list int)) "descending score" [ 2; 4; 0; 3; 1 ] order;
  check_bool "emptied" true (Sat.Idx_heap.is_empty h)

let test_heap_update () =
  let score = [| 5.; 1.; 9. |] in
  let h = Sat.Idx_heap.create ~score:(fun k -> score.(k)) in
  List.iter (Sat.Idx_heap.insert h) [ 0; 1; 2 ];
  score.(1) <- 100.;
  Sat.Idx_heap.update h 1;
  check_int "bumped key pops first" 1 (Sat.Idx_heap.pop_max h)

let test_heap_mem_reinsert () =
  let h = Sat.Idx_heap.create ~score:(fun k -> float_of_int k) in
  Sat.Idx_heap.insert h 3;
  Sat.Idx_heap.insert h 3;
  check_int "no duplicate" 1 (Sat.Idx_heap.size h);
  check_bool "mem" true (Sat.Idx_heap.mem h 3);
  ignore (Sat.Idx_heap.pop_max h);
  check_bool "gone" false (Sat.Idx_heap.mem h 3);
  Sat.Idx_heap.insert h 3;
  check_bool "reinsertable" true (Sat.Idx_heap.mem h 3)

let test_heap_random () =
  (* heap pops must match sorting by score, for many random configurations *)
  let st = Random.State.make [| 11 |] in
  for _ = 1 to 50 do
    let n = 1 + Random.State.int st 40 in
    let score = Array.init n (fun _ -> Random.State.float st 100.) in
    let h = Sat.Idx_heap.create ~score:(fun k -> score.(k)) in
    List.iter (Sat.Idx_heap.insert h) (List.init n Fun.id);
    let popped = List.init n (fun _ -> Sat.Idx_heap.pop_max h) in
    let sorted =
      List.sort (fun a b -> compare score.(b) score.(a)) (List.init n Fun.id)
    in
    Alcotest.(check (list int)) "pop order = sort order" sorted popped
  done

let () =
  Alcotest.run "vec_heap"
    [
      ( "vec",
        [
          Alcotest.test_case "push/pop" `Quick test_push_pop;
          Alcotest.test_case "shrink/clear" `Quick test_shrink_clear;
          Alcotest.test_case "swap_remove" `Quick test_swap_remove;
          Alcotest.test_case "grow_to" `Quick test_grow_to;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "filter_in_place" `Quick test_filter_in_place;
          Alcotest.test_case "filter_in_place random" `Quick test_filter_in_place_random;
          Alcotest.test_case "fold/iter/exists" `Quick test_fold_iter;
        ] );
      ( "idx_heap",
        [
          Alcotest.test_case "pop order" `Quick test_heap_order;
          Alcotest.test_case "update" `Quick test_heap_update;
          Alcotest.test_case "mem/reinsert" `Quick test_heap_mem_reinsert;
          Alcotest.test_case "random configurations" `Quick test_heap_random;
        ] );
    ]
