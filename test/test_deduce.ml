(* DeduceOrder / NaiveDeduce and true-value extraction (Section V-B),
   including the paper's Examples 2, 4 and 9, and soundness against the
   exhaustive reference semantics. *)

module E = Crcore.Encode
module D = Crcore.Deduce

let deduced_value d name =
  let a = Schema.index Fixtures.schema name in
  (D.true_values d).(a)

let check_value d name expect =
  match deduced_value d name with
  | Some v -> Alcotest.(check string) name expect (Value.to_string v)
  | None -> Alcotest.failf "%s: no true value deduced" name

let check_unknown d name =
  match deduced_value d name with
  | None -> ()
  | Some v -> Alcotest.failf "%s: unexpected true value %s" name (Value.to_string v)

let test_edith_example2 () =
  (* the paper's Example 2: all of Edith's true values are deducible *)
  let enc = E.encode (Fixtures.edith_spec ()) in
  let d = D.deduce_order enc in
  check_value d "name" "Edith Shain";
  check_value d "status" "deceased";
  check_value d "job" "n/a";
  check_value d "kids" "3";
  check_value d "city" "LA";
  check_value d "AC" "213";
  check_value d "zip" "90058";
  check_value d "county" "Vermont"

let test_george_example4 () =
  (* Example 4: only name and kids are determined for George *)
  let enc = E.encode (Fixtures.george_spec ()) in
  let d = D.deduce_order enc in
  check_value d "name" "George";
  check_value d "kids" "2";
  List.iter (check_unknown d) [ "status"; "job"; "city"; "AC"; "zip"; "county" ]

let test_george_partial_orders () =
  (* Example 9's deduced facts: 0<2 kids, working<retired status, and the
     ϕ5–ϕ7 consequences *)
  let enc = E.encode (Fixtures.george_spec ()) in
  let d = D.deduce_order enc in
  let coding = enc.E.coding in
  let lt name v1 v2 =
    let a = Schema.index Fixtures.schema name in
    D.lt d ~attr:a
      (Crcore.Coding.vid coding a (Value.of_string v1))
      (Crcore.Coding.vid coding a (Value.of_string v2))
  in
  Alcotest.(check bool) "kids 0<2" true (lt "kids" "0" "2");
  Alcotest.(check bool) "status working<retired" true (lt "status" "working" "retired");
  Alcotest.(check bool) "job sailor<veteran" true (lt "job" "sailor" "veteran");
  Alcotest.(check bool) "AC 401<212" true (lt "AC" "401" "212");
  Alcotest.(check bool) "zip 02840<12404" true (lt "zip" "02840" "12404");
  Alcotest.(check bool) "status retired vs unemployed open" false (lt "status" "retired" "unemployed")

let test_george_example9_after_input () =
  (* validating status = retired lets everything else be deduced *)
  let spec = Fixtures.george_spec () in
  let spec =
    Crcore.Spec.add_order_edges spec [ { Crcore.Spec.attr = "status"; lo = 2; hi = 1 } ]
  in
  let d = D.deduce_order (E.encode spec) in
  check_value d "status" "retired";
  check_value d "job" "veteran";
  check_value d "AC" "212";
  check_value d "zip" "12404";
  check_value d "city" "NY";
  check_value d "county" "Accord"

let test_candidates () =
  let enc = E.encode (Fixtures.george_spec ()) in
  let d = D.deduce_order enc in
  let cand name =
    let a = Schema.index Fixtures.schema name in
    List.map
      (fun id -> Value.to_string (Crcore.Coding.value enc.E.coding a id))
      (D.candidates d a)
    |> List.sort compare
  in
  Alcotest.(check (list string)) "status candidates" [ "retired"; "unemployed" ] (cand "status");
  Alcotest.(check (list string)) "kids candidate" [ "2" ] (cand "kids");
  Alcotest.(check (list string)) "AC candidates" [ "212"; "312" ] (cand "AC")

let test_naive_agrees_on_paper_examples () =
  List.iter
    (fun spec ->
      let enc = E.encode spec in
      let d = D.deduce_order enc in
      let n = D.naive_deduce enc in
      let tv_d = D.true_values d and tv_n = D.true_values n in
      Array.iteri
        (fun a vd ->
          let vn = tv_n.(a) in
          match (vd, vn) with
          | Some x, Some y ->
              Alcotest.(check string) "same value" (Value.to_string x) (Value.to_string y)
          | None, None -> ()
          | Some x, None ->
              (* DeduceOrder may find strictly more via negative units *)
              ignore x
          | None, Some y ->
              Alcotest.failf "naive found %s where deduce_order did not" (Value.to_string y))
        tv_d)
    [ Fixtures.edith_spec (); Fixtures.george_spec () ]

let test_n_facts_monotone () =
  (* adding user input can only grow the deduced order *)
  let spec = Fixtures.george_spec () in
  let d0 = D.deduce_order (E.encode spec) in
  let spec' =
    Crcore.Spec.add_order_edges spec [ { Crcore.Spec.attr = "status"; lo = 2; hi = 1 } ]
  in
  let d1 = D.deduce_order (E.encode spec') in
  Alcotest.(check bool) "monotone" true (D.n_facts d1 > D.n_facts d0)

(* ---- differential properties against the reference semantics ---- *)

let prop_deduced_facts_implied =
  QCheck.Test.make ~count:120 ~name:"every Od fact holds in all valid completions (exact mode)"
    Fixtures.qcheck_spec (fun spec ->
      let enc = E.encode ~mode:E.Exact spec in
      if not (Crcore.Validity.check enc) then true
      else begin
        let d = D.deduce_order enc in
        let coding = enc.E.coding in
        let schema = Crcore.Coding.schema coding in
        let ok = ref true in
        Array.iteri
          (fun a o ->
            List.iter
              (fun (lo, hi) ->
                let v1 = Crcore.Coding.value coding a lo in
                let v2 = Crcore.Coding.value coding a hi in
                match
                  Crcore.Reference.implied spec ~attr:(Schema.name schema a) v1 v2
                with
                | Some true | None -> ()
                | Some false -> ok := false)
              (Porder.Strict_order.pairs o))
          d.D.od;
        !ok
      end)

let prop_true_values_agree_with_reference =
  QCheck.Test.make ~count:120 ~name:"deduced true values match reference agreement (exact mode)"
    Fixtures.qcheck_spec (fun spec ->
      match Crcore.Reference.analyze spec with
      | None -> true
      | Some r ->
          if not r.Crcore.Reference.valid then true
          else begin
            let enc = E.encode ~mode:E.Exact spec in
            let d = D.deduce_order enc in
            let tv = D.true_values d in
            let ok = ref true in
            Array.iteri
              (fun a vo ->
                match (vo, r.Crcore.Reference.agreed.(a)) with
                | Some v, Some w -> if not (Value.equal v w) then ok := false
                | Some _, None -> ok := false
                | None, _ -> ())
              tv;
            !ok
          end)

let prop_naive_facts_implied =
  QCheck.Test.make ~count:60 ~name:"naive_deduce facts hold in all valid completions (exact mode)"
    Fixtures.qcheck_spec (fun spec ->
      let enc = E.encode ~mode:E.Exact spec in
      if not (Crcore.Validity.check enc) then true
      else begin
        let n = D.naive_deduce enc in
        let coding = enc.E.coding in
        let schema = Crcore.Coding.schema coding in
        let ok = ref true in
        Array.iteri
          (fun a o ->
            List.iter
              (fun (lo, hi) ->
                match
                  Crcore.Reference.implied spec ~attr:(Schema.name schema a)
                    (Crcore.Coding.value coding a lo) (Crcore.Coding.value coding a hi)
                with
                | Some true | None -> ()
                | Some false -> ok := false)
              (Porder.Strict_order.pairs o))
          n.D.od;
        !ok
      end)

(* ---- backbone: complete deduction by model intersection ---- *)

let sorted_pairs (d : D.t) =
  Array.map (fun o -> List.sort compare (Porder.Strict_order.pairs o)) d.D.od

let same_orders a b =
  let pa = sorted_pairs a and pb = sorted_pairs b in
  Array.length pa = Array.length pb && Array.for_all2 ( = ) pa pb

let subset_orders a b =
  (* every pair of [a]'s closure appears in [b]'s *)
  Array.for_all2
    (fun pa pb -> List.for_all (fun p -> List.mem p pb) pa)
    (sorted_pairs a) (sorted_pairs b)

let test_backbone_on_paper_examples () =
  List.iter
    (fun spec ->
      let enc = E.encode spec in
      let b = D.backbone enc in
      let n = D.naive_deduce enc in
      Alcotest.(check bool) "backbone od == naive od" true (same_orders b n);
      Alcotest.(check bool) "fewer SAT calls than naive" true
        (b.D.stats.D.sat_calls < n.D.stats.D.sat_calls))
    [ Fixtures.edith_spec (); Fixtures.george_spec () ]

(* the headline property (both encoding modes, and with a reused session
   solver): backbone computes exactly NaiveDeduce's positive backbone *)
let prop_backbone_equals_naive =
  QCheck.Test.make ~count:300 ~name:"backbone == naive_deduce (both modes, fresh + reused solver)"
    Fixtures.qcheck_spec (fun spec ->
      List.for_all
        (fun mode ->
          let enc = E.encode ~mode spec in
          if not (Crcore.Validity.check enc) then true
          else begin
            let n = D.naive_deduce enc in
            let b = D.backbone enc in
            (* a live session: CNF loaded, validity solved (model saved) *)
            let s = Sat.Solver.create () in
            Sat.Solver.add_cnf s enc.E.cnf;
            let sat = Sat.Solver.solve s = Sat.Solver.Sat in
            let br = D.backbone ~solver:s enc in
            sat && same_orders b n && same_orders br n
            && b.D.stats.D.sat_calls <= enc.E.cnf.Sat.Cnf.nvars + 1
            && br.D.stats.D.reused_solver
            && (not b.D.stats.D.reused_solver)
          end)
        [ E.Paper; E.Exact ])

(* deduce_order reads negative units as reversed pairs, which is sound
   under the total-order completion semantics the Exact mode encodes — so
   the subset relation against the complete deducers holds there *)
let prop_deduce_order_subset_of_complete =
  QCheck.Test.make ~count:200 ~name:"deduce_order facts subset of backbone and naive (exact mode)"
    Fixtures.qcheck_spec (fun spec ->
      let enc = E.encode ~mode:E.Exact spec in
      if not (Crcore.Validity.check enc) then true
      else begin
        let u = D.deduce_order enc in
        let b = D.backbone enc in
        let n = D.naive_deduce enc in
        subset_orders u b && subset_orders u n
      end)

(* duplicate literals within a clause must not corrupt the occurrence
   counting (n_active would go negative / fire bogus units) *)
let prop_duplicate_literals_harmless =
  QCheck.Test.make ~count:100 ~name:"deduce_order unchanged under duplicated clause literals"
    Fixtures.qcheck_spec (fun spec ->
      let enc = E.encode spec in
      let dup =
        {
          enc with
          E.cnf =
            Sat.Cnf.unsafe_make ~nvars:enc.E.cnf.Sat.Cnf.nvars
              (List.map
                 (fun c -> Array.append c c)
                 enc.E.cnf.Sat.Cnf.clauses);
        }
      in
      same_orders (D.deduce_order enc) (D.deduce_order dup))

let () =
  Alcotest.run "deduce"
    [
      ( "paper_examples",
        [
          Alcotest.test_case "Edith: Example 2" `Quick test_edith_example2;
          Alcotest.test_case "George: Example 4" `Quick test_george_example4;
          Alcotest.test_case "George: deduced orders" `Quick test_george_partial_orders;
          Alcotest.test_case "George: Example 9 after input" `Quick test_george_example9_after_input;
          Alcotest.test_case "candidate sets V(A)" `Quick test_candidates;
          Alcotest.test_case "naive vs deduce_order" `Quick test_naive_agrees_on_paper_examples;
          Alcotest.test_case "monotonicity" `Quick test_n_facts_monotone;
          Alcotest.test_case "backbone on paper examples" `Quick test_backbone_on_paper_examples;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_deduced_facts_implied;
            prop_true_values_agree_with_reference;
            prop_naive_facts_implied;
            prop_backbone_equals_naive;
            prop_deduce_order_subset_of_complete;
            prop_duplicate_literals_harmless;
          ] );
    ]
