(* Stress and adversarial tests for the CDCL solver and its use by the
   encoding pipeline: bigger instances, structured hard formulas, clause
   pathologies, and long incremental sessions. *)

let lit = Sat.Lit.make

let test_random_3sat_phase_transition () =
  (* 60 variables at clause ratio ~4.2: hard-ish region; the solver must
     terminate and, when SAT, return a genuine model *)
  let st = Random.State.make [| 1234 |] in
  for _ = 1 to 10 do
    let nvars = 60 in
    let nclauses = 252 in
    let clause () =
      let rec distinct acc =
        if List.length acc = 3 then acc
        else
          let v = Random.State.int st nvars in
          if List.mem v acc then distinct acc else distinct (v :: acc)
      in
      Array.of_list (List.map (fun v -> lit v (Random.State.bool st)) (distinct []))
    in
    let f = Sat.Cnf.make ~nvars (List.init nclauses (fun _ -> clause ())) in
    let s = Sat.Solver.create () in
    Sat.Solver.add_cnf s f;
    match Sat.Solver.solve s with
    | Sat.Solver.Sat -> Alcotest.(check bool) "model valid" true (Sat.Cnf.eval (Sat.Solver.model s) f)
    | Sat.Solver.Unsat -> ()
  done

let test_php_scaling () =
  (* pigeonhole instances force deep conflict analysis; PHP(6,5) has
     thousands of conflicts *)
  let php pigeons holes =
    let var p h = (p * holes) + h in
    let clauses = ref [] in
    for p = 0 to pigeons - 1 do
      clauses := Array.init holes (fun h -> lit (var p h) true) :: !clauses
    done;
    for h = 0 to holes - 1 do
      for p1 = 0 to pigeons - 1 do
        for p2 = p1 + 1 to pigeons - 1 do
          clauses := [| lit (var p1 h) false; lit (var p2 h) false |] :: !clauses
        done
      done
    done;
    Sat.Cnf.make ~nvars:(pigeons * holes) !clauses
  in
  let s = Sat.Solver.create () in
  Sat.Solver.add_cnf s (php 6 5);
  Alcotest.(check bool) "php(6,5) unsat" true (Sat.Solver.solve s = Sat.Solver.Unsat);
  Alcotest.(check bool) "real conflicts happened" true
    ((Sat.Solver.stats s).Sat.Solver.conflicts > 10);
  (* satisfiable variant: as many holes as pigeons *)
  let s2 = Sat.Solver.create () in
  Sat.Solver.add_cnf s2 (php 5 5);
  Alcotest.(check bool) "php(5,5) sat" true (Sat.Solver.solve s2 = Sat.Solver.Sat)

let test_clause_pathologies () =
  let s = Sat.Solver.create () in
  Sat.Solver.ensure_nvars s 3;
  (* tautologies are dropped silently *)
  Sat.Solver.add_clause s [ lit 0 true; lit 0 false ];
  (* duplicate literals collapse *)
  Sat.Solver.add_clause s [ lit 1 true; lit 1 true; lit 1 true ];
  Alcotest.(check (option bool)) "duplicate unit propagated" (Some true)
    (Sat.Solver.value_level0 s 1);
  (* clause false at level 0 shrinks *)
  Sat.Solver.add_clause s [ lit 1 false; lit 2 true ];
  Alcotest.(check (option bool)) "chain propagated" (Some true) (Sat.Solver.value_level0 s 2);
  Alcotest.(check bool) "still sat" true (Sat.Solver.solve s = Sat.Solver.Sat);
  (* unallocated variable rejected *)
  Alcotest.(check bool) "unallocated var" true
    (try Sat.Solver.add_clause s [ lit 99 true ]; false with Invalid_argument _ -> true)

let test_incremental_session () =
  (* long alternation of clause additions and assumption solves *)
  let s = Sat.Solver.create () in
  let n = 40 in
  Sat.Solver.ensure_nvars s n;
  (* implication chain x0 -> x1 -> ... -> x39 *)
  for v = 0 to n - 2 do
    Sat.Solver.add_clause s [ lit v false; lit (v + 1) true ]
  done;
  Alcotest.(check bool) "chain head forces tail" true
    (Sat.Solver.solve ~assumptions:[ lit 0 true; lit (n - 1) false ] s = Sat.Solver.Unsat);
  Alcotest.(check bool) "without head: free" true
    (Sat.Solver.solve ~assumptions:[ lit (n - 1) false ] s = Sat.Solver.Sat);
  (* now pin the head permanently and re-ask *)
  Sat.Solver.add_clause s [ lit 0 true ];
  Alcotest.(check bool) "tail now forced" true
    (Sat.Solver.solve ~assumptions:[ lit (n - 1) false ] s = Sat.Solver.Unsat);
  Alcotest.(check bool) "still sat unconditionally" true (Sat.Solver.solve s = Sat.Solver.Sat);
  Alcotest.(check bool) "model respects chain" true (Sat.Solver.model_value s (n - 1))

let test_many_solves_stats_monotone () =
  let st = Random.State.make [| 5 |] in
  let s = Sat.Solver.create () in
  Sat.Solver.ensure_nvars s 20;
  let last_props = ref 0 in
  for _ = 1 to 50 do
    let c =
      Array.init (1 + Random.State.int st 3) (fun _ ->
          lit (Random.State.int st 20) (Random.State.bool st))
    in
    Sat.Solver.add_clause_a s c;
    ignore (Sat.Solver.solve s);
    let p = (Sat.Solver.stats s).Sat.Solver.propagations in
    Alcotest.(check bool) "propagations monotone" true (p >= !last_props);
    last_props := p
  done

(* large encoded instances: a big Person entity end-to-end *)
let test_large_person_pipeline () =
  let ds =
    Datagen.Person.generate
      {
        Datagen.Person.default_params with
        n_entities = 1;
        size_min = 4000;
        size_max = 4000;
        extra_events = 8;
      }
  in
  let case = List.hd ds.Datagen.Types.cases in
  let spec = Datagen.Types.spec_of ds case in
  let enc = Crcore.Encode.encode spec in
  Alcotest.(check bool) "valid" true (Crcore.Validity.check enc);
  let d = Crcore.Deduce.deduce_order enc in
  Alcotest.(check bool) "deduces something" true (Crcore.Deduce.n_facts d > 0);
  let o = Crcore.Framework.resolve ~user:(Crcore.Framework.oracle case.truth) spec in
  Alcotest.(check bool) "resolves" true o.Crcore.Framework.valid;
  Array.iteri
    (fun a vo ->
      match vo with
      | Some v ->
          Alcotest.(check bool) "matches truth" true (Value.equal v (Tuple.get case.truth a))
      | None -> Alcotest.fail "attribute left open with oracle")
    o.Crcore.Framework.resolved

let test_walksat_on_hard_hard_clauses () =
  (* hard clauses forming an implication cycle plus soft units pulling the
     other way: the feasible optimum flips the whole cycle *)
  let nvars = 10 in
  let hard =
    Sat.Cnf.make ~nvars
      (List.init nvars (fun v -> [| lit v false; lit ((v + 1) mod nvars) true |]))
  in
  let soft = List.init nvars (fun v -> [| lit v true |]) in
  match Maxsat.Walksat.solve ~max_flips:20_000 ~hard ~soft () with
  | None -> Alcotest.fail "hard is satisfiable"
  | Some o ->
      Alcotest.(check bool) "feasible" true (Sat.Cnf.eval o.Maxsat.Walksat.model hard);
      (* optimum satisfies all soft (all true satisfies the cycle) *)
      Alcotest.(check int) "optimum found" nvars o.Maxsat.Walksat.satisfied

let () =
  Alcotest.run "solver_stress"
    [
      ( "sat",
        [
          Alcotest.test_case "random 3-SAT near threshold" `Quick test_random_3sat_phase_transition;
          Alcotest.test_case "pigeonhole scaling" `Quick test_php_scaling;
          Alcotest.test_case "clause pathologies" `Quick test_clause_pathologies;
          Alcotest.test_case "incremental session" `Quick test_incremental_session;
          Alcotest.test_case "stats monotone over solves" `Quick test_many_solves_stats_monotone;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "4k-tuple person end-to-end" `Slow test_large_person_pipeline;
          Alcotest.test_case "walksat hard-clause cycle" `Quick test_walksat_on_hard_hard_clauses;
        ] );
    ]
