(* The CDCL solver, tested against hand-built formulas, DIMACS fixtures,
   and the brute-force reference on random CNFs (qcheck). *)

let lit = Sat.Lit.make

let solve_cnf f =
  let s = Sat.Solver.create () in
  Sat.Solver.add_cnf s f;
  (s, Sat.Solver.solve s)

let is_sat f = match solve_cnf f with _, Sat.Solver.Sat -> true | _ -> false

let test_lit_encoding () =
  Alcotest.(check int) "var" 7 (Sat.Lit.var (lit 7 true));
  Alcotest.(check int) "var neg" 7 (Sat.Lit.var (lit 7 false));
  Alcotest.(check bool) "sign pos" true (Sat.Lit.sign (lit 3 true));
  Alcotest.(check bool) "sign neg" false (Sat.Lit.sign (lit 3 false));
  Alcotest.(check int) "negate round trip" (lit 4 true) (Sat.Lit.negate (Sat.Lit.negate (lit 4 true)));
  Alcotest.(check int) "dimacs pos" 5 (Sat.Lit.to_dimacs (Sat.Lit.of_dimacs 5));
  Alcotest.(check int) "dimacs neg" (-5) (Sat.Lit.to_dimacs (Sat.Lit.of_dimacs (-5)))

let test_trivial () =
  Alcotest.(check bool) "empty formula" true (is_sat (Sat.Cnf.make ~nvars:0 []));
  Alcotest.(check bool) "unit" true (is_sat (Sat.Cnf.make ~nvars:1 [ [| lit 0 true |] ]));
  Alcotest.(check bool) "contradiction" false
    (is_sat (Sat.Cnf.make ~nvars:1 [ [| lit 0 true |]; [| lit 0 false |] ]));
  Alcotest.(check bool) "empty clause" false (is_sat (Sat.Cnf.make ~nvars:1 [ [||] ]))

let test_model () =
  let f =
    Sat.Cnf.make ~nvars:3
      [ [| lit 0 true |]; [| lit 0 false; lit 1 true |]; [| lit 1 false; lit 2 false |] ]
  in
  let s, r = solve_cnf f in
  Alcotest.(check bool) "sat" true (r = Sat.Solver.Sat);
  let m = Sat.Solver.model s in
  Alcotest.(check bool) "model satisfies" true (Sat.Cnf.eval m f);
  Alcotest.(check bool) "x0" true (Sat.Solver.model_value s 0);
  Alcotest.(check bool) "x1" true (Sat.Solver.model_value s 1);
  Alcotest.(check bool) "x2" false (Sat.Solver.model_value s 2)

let test_level0 () =
  let s = Sat.Solver.create () in
  Sat.Solver.ensure_nvars s 2;
  Sat.Solver.add_clause s [ lit 0 true ];
  Sat.Solver.add_clause s [ lit 0 false; lit 1 true ];
  Alcotest.(check (option bool)) "x0 fixed" (Some true) (Sat.Solver.value_level0 s 0);
  Alcotest.(check (option bool)) "x1 propagated" (Some true) (Sat.Solver.value_level0 s 1)

let test_pigeonhole () =
  (* PHP(4,3): 4 pigeons in 3 holes, classic small UNSAT instance that
     needs real conflict analysis *)
  let var p h = (p * 3) + h in
  let clauses = ref [] in
  for p = 0 to 3 do
    clauses := Array.init 3 (fun h -> lit (var p h) true) :: !clauses
  done;
  for h = 0 to 2 do
    for p1 = 0 to 3 do
      for p2 = p1 + 1 to 3 do
        clauses := [| lit (var p1 h) false; lit (var p2 h) false |] :: !clauses
      done
    done
  done;
  Alcotest.(check bool) "php(4,3) unsat" false (is_sat (Sat.Cnf.make ~nvars:12 !clauses))

let test_assumptions () =
  let f = Sat.Cnf.make ~nvars:2 [ [| lit 0 true; lit 1 true |] ] in
  let s, r = solve_cnf f in
  Alcotest.(check bool) "base sat" true (r = Sat.Solver.Sat);
  Alcotest.(check bool) "assume both false"
    (Sat.Solver.solve ~assumptions:[ lit 0 false; lit 1 false ] s = Sat.Solver.Unsat)
    true;
  Alcotest.(check bool) "assume one false"
    (Sat.Solver.solve ~assumptions:[ lit 0 false ] s = Sat.Solver.Sat)
    true;
  (* solver still usable without assumptions *)
  Alcotest.(check bool) "still sat" true (Sat.Solver.solve s = Sat.Solver.Sat);
  Alcotest.(check bool) "still ok" true (Sat.Solver.ok s)

let test_incremental () =
  let s = Sat.Solver.create () in
  Sat.Solver.ensure_nvars s 3;
  Sat.Solver.add_clause s [ lit 0 true; lit 1 true ];
  Alcotest.(check bool) "sat 1" true (Sat.Solver.solve s = Sat.Solver.Sat);
  Sat.Solver.add_clause s [ lit 0 false ];
  Alcotest.(check bool) "sat 2" true (Sat.Solver.solve s = Sat.Solver.Sat);
  Sat.Solver.add_clause s [ lit 1 false ];
  Alcotest.(check bool) "unsat after narrowing" true (Sat.Solver.solve s = Sat.Solver.Unsat);
  Alcotest.(check bool) "ok false" false (Sat.Solver.ok s)

let test_dimacs_roundtrip () =
  let text = "c a comment\np cnf 3 2\n1 -2 0\n2 3 0\n" in
  let f = Sat.Dimacs.parse_string text in
  Alcotest.(check int) "nvars" 3 f.Sat.Cnf.nvars;
  Alcotest.(check int) "nclauses" 2 (Sat.Cnf.nclauses f);
  let f2 = Sat.Dimacs.parse_string (Sat.Dimacs.to_string f) in
  Alcotest.(check int) "round trip clauses" (Sat.Cnf.nclauses f) (Sat.Cnf.nclauses f2);
  Alcotest.(check bool) "both sat" (is_sat f) (is_sat f2)

let test_dimacs_errors () =
  Alcotest.(check bool) "bad token"
    (try ignore (Sat.Dimacs.parse_string "1 x 0"); false with Failure _ -> true)
    true

(* ---- randomised differential tests ---- *)

let rand_cnf st nvars nclauses =
  let clause () =
    let len = 1 + Random.State.int st 3 in
    Array.init len (fun _ -> lit (Random.State.int st nvars) (Random.State.bool st))
  in
  Sat.Cnf.make ~nvars (List.init nclauses (fun _ -> clause ()))

let qcheck_cnf =
  QCheck.make
    ~print:(fun f -> Format.asprintf "%a" Sat.Cnf.pp f)
    QCheck.Gen.(
      int_range 1 10 >>= fun nvars ->
      int_range 0 40 >>= fun ncl ->
      int_bound 1_000_000 >|= fun seed ->
      rand_cnf (Random.State.make [| seed |]) nvars ncl)

let prop_agrees_with_brute =
  QCheck.Test.make ~count:300 ~name:"cdcl agrees with brute force" qcheck_cnf (fun f ->
      let brute_sat = Sat.Brute.solve f <> None in
      let s, r = solve_cnf f in
      match r with
      | Sat.Solver.Sat -> brute_sat && Sat.Cnf.eval (Sat.Solver.model s) f
      | Sat.Solver.Unsat -> not brute_sat)

let prop_assumptions_sound =
  QCheck.Test.make ~count:200 ~name:"assumptions = added units" qcheck_cnf (fun f ->
      if f.Sat.Cnf.nvars < 2 then true
      else begin
        let a1 = lit 0 true and a2 = lit 1 false in
        let f' = Sat.Cnf.add_clause (Sat.Cnf.add_clause f [| a1 |]) [| a2 |] in
        let s, _ = solve_cnf f in
        let with_assump = Sat.Solver.solve ~assumptions:[ a1; a2 ] s in
        let direct = if Sat.Brute.solve f' <> None then Sat.Solver.Sat else Sat.Solver.Unsat in
        with_assump = direct
      end)

let prop_model_count_positive =
  QCheck.Test.make ~count:100 ~name:"sat iff count_models > 0" qcheck_cnf (fun f ->
      let n = Sat.Brute.count_models f in
      is_sat f = (n > 0))

(* ---- simplify / clause-database management ---- *)

let test_simplify_subsumption () =
  let s = Sat.Solver.create () in
  Sat.Solver.ensure_nvars s 4;
  Sat.Solver.add_clause s [ lit 0 true; lit 1 true ];
  Alcotest.(check int) "binary layer" 1 (Sat.Solver.stats s).Sat.Solver.binaries;
  Sat.Solver.add_clause s [ lit 0 true; lit 1 true; lit 2 true ];
  Sat.Solver.add_clause s [ lit 0 true; lit 2 false; lit 3 true ];
  Sat.Solver.freeze_all s;
  Sat.Solver.simplify s;
  let st = Sat.Solver.stats s in
  Alcotest.(check bool) "subsumed the long clause" true (st.Sat.Solver.subsumed >= 1);
  Alcotest.(check int) "frozen: nothing eliminated" 0 st.Sat.Solver.vars_eliminated;
  Alcotest.(check bool) "still sat" true (Sat.Solver.solve s = Sat.Solver.Sat)

let test_simplify_bve () =
  (* (x2 | x0) & (~x2 | x1) with x2 unfrozen: BVE resolves x2 away,
     leaving (x0 | x1); the model must still be reconstructable for x2 *)
  let s = Sat.Solver.create () in
  Sat.Solver.ensure_nvars s 3;
  Sat.Solver.add_clause s [ lit 2 true; lit 0 true ];
  Sat.Solver.add_clause s [ lit 2 false; lit 1 true ];
  Sat.Solver.freeze s 0;
  Sat.Solver.freeze s 1;
  Sat.Solver.simplify s;
  Alcotest.(check bool) "x2 eliminated" true (Sat.Solver.is_eliminated s 2);
  Alcotest.(check bool) "counter" true
    ((Sat.Solver.stats s).Sat.Solver.vars_eliminated >= 1);
  Alcotest.(check bool) "sat under ~x0"
    (Sat.Solver.solve ~assumptions:[ lit 0 false ] s = Sat.Solver.Sat)
    true;
  (* reconstructed x2 must satisfy the original clauses: ~x0 forces x2,
     which forces x1 *)
  Alcotest.(check bool) "x2 reconstructed" true (Sat.Solver.model_value s 2);
  Alcotest.(check bool) "x1 follows" true (Sat.Solver.model_value s 1);
  Alcotest.check_raises "eliminated vars rejected in new clauses"
    (Invalid_argument "Solver.add_clause: eliminated variable (freeze it first)")
    (fun () -> Sat.Solver.add_clause s [ lit 2 true ])

let test_simplify_subst () =
  (* (a -> b) and (b -> a): one binary SCC, so simplify collapses b onto a
     while both stay frozen — substituted variables remain expressible *)
  let s = Sat.Solver.create () in
  Sat.Solver.ensure_nvars s 3;
  Sat.Solver.add_clause s [ lit 0 false; lit 1 true ];
  Sat.Solver.add_clause s [ lit 1 false; lit 0 true ];
  Sat.Solver.add_clause s [ lit 1 false; lit 2 true ];
  Sat.Solver.freeze_all s;
  Sat.Solver.simplify s;
  let st = Sat.Solver.stats s in
  Alcotest.(check int) "one variable substituted" 1 st.Sat.Solver.vars_substituted;
  Alcotest.(check int) "frozen: nothing eliminated" 0 st.Sat.Solver.vars_eliminated;
  Alcotest.(check bool) "sat under a" true
    (Sat.Solver.solve ~assumptions:[ lit 0 true ] s = Sat.Solver.Sat);
  Alcotest.(check bool) "model keeps a = b" true
    (Sat.Solver.model_value s 0 = Sat.Solver.model_value s 1);
  Alcotest.(check bool) "b -> c survives the rewrite" true (Sat.Solver.model_value s 2);
  (* contradictory through the substitution: b maps to a *)
  Alcotest.(check bool) "unsat under a, ~b" true
    (Sat.Solver.solve ~assumptions:[ lit 0 true; lit 1 false ] s = Sat.Solver.Unsat);
  (* the export keeps frozen substituted variables expressible *)
  let f = Sat.Solver.export_cnf s in
  let f' = Sat.Cnf.add_clause (Sat.Cnf.add_clause f [| lit 0 true |]) [| lit 1 false |] in
  Alcotest.(check bool) "export keeps a = b" true (Sat.Brute.solve f' = None);
  (* level-0 facts flow through the substitution in both directions *)
  Sat.Solver.add_clause s [ lit 1 true ];
  Alcotest.(check (option bool)) "unit b fixes a" (Some true) (Sat.Solver.value_level0 s 0);
  Alcotest.(check (option bool)) "and b itself" (Some true) (Sat.Solver.value_level0 s 1)

let test_simplify_subst_contradiction () =
  (* a = b and a = ~b put a literal and its negation in one SCC: unsat *)
  let s = Sat.Solver.create () in
  Sat.Solver.ensure_nvars s 2;
  Sat.Solver.add_clause s [ lit 0 false; lit 1 true ];
  Sat.Solver.add_clause s [ lit 1 false; lit 0 true ];
  Sat.Solver.add_clause s [ lit 0 false; lit 1 false ];
  Sat.Solver.add_clause s [ lit 0 true; lit 1 true ];
  Sat.Solver.freeze_all s;
  Sat.Solver.simplify s;
  Alcotest.(check bool) "unsat" true (Sat.Solver.solve s = Sat.Solver.Unsat)

let test_subst_after_elimination () =
  (* Regression for the elimination-stack/substitution interleaving: round
     one BVE-eliminates e from (e | c) & (~e | b), recording (e | c) for
     model reconstruction; round two substitutes c onto a. The recorded
     clause must follow the substitution, or reconstruction reads a stale
     value for c and can flip e against (~e | b). *)
  let s = Sat.Solver.create () in
  Sat.Solver.ensure_nvars s 4;
  (* a=0 b=1 c=2 e=3; everything but e frozen *)
  Sat.Solver.freeze s 0;
  Sat.Solver.freeze s 1;
  Sat.Solver.freeze s 2;
  let round1 = [ [ lit 3 true; lit 2 true ]; [ lit 3 false; lit 1 true ] ] in
  List.iter (Sat.Solver.add_clause s) round1;
  Sat.Solver.simplify s;
  Alcotest.(check bool) "e eliminated" true (Sat.Solver.is_eliminated s 3);
  (* round two: the a = c equivalence plus enough filler clauses to clear
     the 25%-growth inprocessing threshold so simplify runs again *)
  Sat.Solver.ensure_nvars s 22;
  let round2 =
    ref [ [ lit 0 false; lit 2 true ]; [ lit 2 false; lit 0 true ] ]
  in
  for v = 4 to 19 do
    round2 := [ lit v true; lit (v + 1) true; lit (v + 2) true ] :: !round2
  done;
  List.iter (Sat.Solver.add_clause s) !round2;
  Sat.Solver.simplify s;
  Alcotest.(check bool) "c substituted" true
    ((Sat.Solver.stats s).Sat.Solver.vars_substituted >= 1);
  Alcotest.(check bool) "sat under a" true
    (Sat.Solver.solve ~assumptions:[ lit 0 true ] s = Sat.Solver.Sat);
  let original =
    Sat.Cnf.make ~nvars:22 (List.map Array.of_list (round1 @ !round2))
  in
  Alcotest.(check bool) "model satisfies every original clause" true
    (Sat.Cnf.eval (Sat.Solver.model s) original)

let prop_simplify_parity =
  QCheck.Test.make ~count:300 ~name:"simplify on/off agree; model satisfies original"
    qcheck_cnf (fun f ->
      let _, r_plain = solve_cnf f in
      let s = Sat.Solver.create () in
      Sat.Solver.add_cnf s f;
      (* nothing frozen: BVE runs unrestricted *)
      Sat.Solver.simplify s;
      match Sat.Solver.solve s with
      | Sat.Solver.Unsat -> r_plain = Sat.Solver.Unsat
      | Sat.Solver.Sat ->
          (* the model, with eliminated variables reconstructed from the
             elimination stack, must satisfy the ORIGINAL formula *)
          r_plain = Sat.Solver.Sat && Sat.Cnf.eval (Sat.Solver.model s) f)

let prop_frozen_never_eliminated =
  QCheck.Test.make ~count:200 ~name:"frozen variables survive simplify" qcheck_cnf
    (fun f ->
      let s = Sat.Solver.create () in
      Sat.Solver.add_cnf s f;
      for v = 0 to f.Sat.Cnf.nvars - 1 do
        if v mod 2 = 0 then Sat.Solver.freeze s v
      done;
      Sat.Solver.simplify s;
      let frozen_intact = ref true in
      for v = 0 to f.Sat.Cnf.nvars - 1 do
        if v mod 2 = 0 && Sat.Solver.is_eliminated s v then frozen_intact := false
      done;
      (* frozen variables stay legal as assumptions, with the right answer *)
      let a = lit 0 true in
      let f' = Sat.Cnf.add_clause f [| a |] in
      let expect =
        if Sat.Brute.solve f' <> None then Sat.Solver.Sat else Sat.Solver.Unsat
      in
      !frozen_intact && Sat.Solver.solve ~assumptions:[ a ] s = expect)

let prop_multiround_simplify =
  (* Two inprocessing rounds with elimination and substitution free to
     interleave: f2 arrives remapped onto the even (frozen) variables, so
     its late arrival is legal after round one may have eliminated odd
     ones, and any model returned must satisfy both original formulas. *)
  QCheck.Test.make ~count:200 ~name:"multi-round simplify stays sound"
    (QCheck.pair qcheck_cnf qcheck_cnf) (fun (f1, f2) ->
      let remap (f : Sat.Cnf.t) =
        List.map
          (Array.map (fun l -> lit (2 * Sat.Lit.var l) (Sat.Lit.sign l)))
          f.Sat.Cnf.clauses
      in
      let f2' = Sat.Cnf.make ~nvars:(2 * f2.Sat.Cnf.nvars) (remap f2) in
      let nv = max f1.Sat.Cnf.nvars (max 1 f2'.Sat.Cnf.nvars) in
      let s = Sat.Solver.create () in
      Sat.Solver.ensure_nvars s nv;
      for v = 0 to nv - 1 do
        if v mod 2 = 0 then Sat.Solver.freeze s v
      done;
      Sat.Solver.add_cnf s f1;
      Sat.Solver.simplify s;
      ignore (Sat.Solver.solve s);
      Sat.Solver.add_cnf s f2';
      Sat.Solver.simplify s;
      let both = Sat.Cnf.make ~nvars:nv (f1.Sat.Cnf.clauses @ remap f2) in
      let expect =
        if Sat.Brute.solve both <> None then Sat.Solver.Sat else Sat.Solver.Unsat
      in
      match Sat.Solver.solve s with
      | Sat.Solver.Unsat -> expect = Sat.Solver.Unsat
      | Sat.Solver.Sat ->
          expect = Sat.Solver.Sat && Sat.Cnf.eval (Sat.Solver.model s) both)

let prop_budget_resume_across_reduce =
  QCheck.Test.make ~count:150 ~name:"budget resume across reduce_db" qcheck_cnf (fun f ->
      let expect = if Sat.Brute.solve f <> None then Sat.Solver.Sat else Sat.Solver.Unsat in
      let s = Sat.Solver.create () in
      Sat.Solver.add_cnf s f;
      (* force a database reduction at (nearly) every conflict, then solve in
         tiny budget slices: interrupted runs resumed across reductions must
         reach the same answer as an uninterrupted solve *)
      Sat.Solver.set_reduce_interval s 1;
      let rec go budget rounds =
        if rounds > 5_000 then None
        else begin
          Sat.Solver.set_budget ~conflicts:budget s;
          match Sat.Solver.solve_limited s with
          | Sat.Solver.Limited.Unknown -> go (budget + 1) (rounds + 1)
          | Sat.Solver.Limited.Sat -> Some Sat.Solver.Sat
          | Sat.Solver.Limited.Unsat -> Some Sat.Solver.Unsat
        end
      in
      match go 1 0 with
      | None -> false
      | Some r ->
          r = expect
          && (r <> Sat.Solver.Sat || Sat.Cnf.eval (Sat.Solver.model s) f))

let prop_export_roundtrip =
  QCheck.Test.make ~count:200 ~name:"of_solver DIMACS round-trips equisatisfiably"
    qcheck_cnf (fun f ->
      let s = Sat.Solver.create () in
      Sat.Solver.add_cnf s f;
      Sat.Solver.simplify s;
      let f2 = Sat.Dimacs.parse_string (Sat.Dimacs.of_solver s) in
      is_sat f = is_sat f2)

let () =
  Alcotest.run "sat"
    [
      ( "unit",
        [
          Alcotest.test_case "literal encoding" `Quick test_lit_encoding;
          Alcotest.test_case "trivial formulas" `Quick test_trivial;
          Alcotest.test_case "model extraction" `Quick test_model;
          Alcotest.test_case "level-0 values" `Quick test_level0;
          Alcotest.test_case "pigeonhole unsat" `Quick test_pigeonhole;
          Alcotest.test_case "assumptions" `Quick test_assumptions;
          Alcotest.test_case "incremental" `Quick test_incremental;
          Alcotest.test_case "dimacs round trip" `Quick test_dimacs_roundtrip;
          Alcotest.test_case "dimacs errors" `Quick test_dimacs_errors;
          Alcotest.test_case "simplify: subsumption" `Quick test_simplify_subsumption;
          Alcotest.test_case "simplify: variable elimination" `Quick test_simplify_bve;
          Alcotest.test_case "simplify: equivalent literals" `Quick test_simplify_subst;
          Alcotest.test_case "simplify: contradictory equivalence" `Quick
            test_simplify_subst_contradiction;
          Alcotest.test_case "simplify: substitution after elimination" `Quick
            test_subst_after_elimination;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ prop_agrees_with_brute; prop_assumptions_sound; prop_model_count_positive ] );
      ( "simplify",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_simplify_parity;
            prop_frozen_never_eliminated;
            prop_multiround_simplify;
            prop_budget_resume_across_reduce;
            prop_export_roundtrip;
          ] );
    ]
