(* The variable coding and the Ω(Se)/Φ(Se) encoding of Section V-A. *)

module E = Crcore.Encode

let test_coding_universes () =
  let spec = Fixtures.edith_spec () in
  let enc = E.encode spec in
  let coding = enc.E.coding in
  let schema = Fixtures.schema in
  let a_city = Schema.index schema "city" in
  let univ = Crcore.Coding.universe coding a_city in
  (* adom(city) = NY, SFC, LA plus the reserved null; CFD constants add
     nothing new *)
  Alcotest.(check int) "city universe" 4 (Array.length univ);
  Alcotest.(check int) "city adom prefix" 4 (Crcore.Coding.adom_size coding a_city);
  Alcotest.(check bool) "reserved null sits last in the adom prefix" true
    (Value.is_null univ.(3));
  let a_kids = Schema.index schema "kids" in
  (* kids already takes null: no extra slot is reserved *)
  Alcotest.(check int) "kids universe includes null" 3
    (Array.length (Crcore.Coding.universe coding a_kids));
  let a_name = Schema.index schema "name" in
  Alcotest.(check int) "single-value attr plus reserved null" 2
    (Array.length (Crcore.Coding.universe coding a_name))

let test_coding_bijection () =
  let spec = Fixtures.edith_spec () in
  let enc = E.encode spec in
  let coding = enc.E.coding in
  let n = Crcore.Coding.nvars coding in
  Alcotest.(check bool) "positive vars" true (n > 0);
  for v = 0 to n - 1 do
    let a, lo, hi = Crcore.Coding.decode coding v in
    Alcotest.(check int) (Printf.sprintf "decode/encode %d" v) v
      (Crcore.Coding.var_of coding ~attr:a lo hi)
  done

let test_coding_foreign_constant () =
  (* a CFD RHS constant the entity never takes cannot become a current
     value: the universe stays the active domain and the CFD's premise is
     vetoed *)
  let schema = Schema.make [ "x"; "y" ] in
  let e =
    Entity.make schema
      [
        Tuple.make schema [ Value.Str "a"; Value.Str "p" ];
        Tuple.make schema [ Value.Str "b"; Value.Str "q" ];
      ]
  in
  let gamma = [ Cfd.Constant_cfd.make [ ("x", Value.Str "a") ] ("y", Value.Str "REPAIR") ] in
  let spec = Crcore.Spec.make e ~orders:[] ~sigma:[] ~gamma in
  let enc = E.encode spec in
  let univ_y = Crcore.Coding.universe enc.E.coding 1 in
  Alcotest.(check int) "y universe = adom + reserved null" 3 (Array.length univ_y);
  Alcotest.(check int) "one veto" 1 (List.length enc.E.vetoes);
  (* the veto forbids a being most current in x: its premise holds the
     facts "b < a" and "null < a" *)
  (match enc.E.vetoes with
  | [ (([ _; _ ] as fs), E.From_cfd 0) ] ->
      List.iter (fun f -> Alcotest.(check int) "veto attr" 0 f.E.attr) fs
  | _ -> Alcotest.fail "unexpected veto shape");
  (* and the specification remains valid: completions put b on top *)
  Alcotest.(check bool) "still valid" true (Crcore.Validity.check enc);
  (* whereas with no alternative value for x it becomes invalid *)
  let e1 = Entity.make schema [ Tuple.make schema [ Value.Str "a"; Value.Str "p" ] ] in
  let spec1 = Crcore.Spec.make e1 ~orders:[] ~sigma:[] ~gamma in
  Alcotest.(check bool) "forced firing invalid" false (Crcore.Validity.is_valid spec1)

let test_units_from_orders () =
  (* explicit currency order edges become unit facts *)
  let spec = Fixtures.george_spec () in
  let spec = Crcore.Spec.add_order_edges spec [ { Crcore.Spec.attr = "status"; lo = 2; hi = 1 } ] in
  let enc = E.encode spec in
  let from_order = List.filter (fun (_, s) -> s = E.From_order) enc.E.units in
  Alcotest.(check bool) "order unit present" true
    (List.exists
       (fun (f, _) ->
         let a, lo, hi = (f.E.attr, f.E.lo, f.E.hi) in
         Schema.name Fixtures.schema a = "status"
         && Value.to_string (Crcore.Coding.value enc.E.coding a lo) = "unemployed"
         && Value.to_string (Crcore.Coding.value enc.E.coding a hi) = "retired")
       from_order)

let test_null_lowest_units () =
  let spec = Fixtures.edith_spec () in
  let enc = E.encode spec in
  let a_kids = Schema.index Fixtures.schema "kids" in
  (* null must be a unit below both 0 and 3 *)
  let null_units =
    List.filter
      (fun (f, s) ->
        s = E.From_order && f.E.attr = a_kids
        && Value.is_null (Crcore.Coding.value enc.E.coding a_kids f.E.lo))
      enc.E.units
  in
  Alcotest.(check int) "null below both kid values" 2 (List.length null_units)

let test_premise_free_instances_are_units () =
  (* ϕ1 on (r1, r2) instantiates to a premise-free instance: a unit *)
  let spec = Fixtures.edith_spec () in
  let enc = E.encode spec in
  let a = Schema.index Fixtures.schema "status" in
  Alcotest.(check bool) "working<retired unit" true
    (List.exists
       (fun (f, s) ->
         (match s with E.From_constraint _ -> true | _ -> false)
         && f.E.attr = a
         && Value.to_string (Crcore.Coding.value enc.E.coding a f.E.lo) = "working"
         && Value.to_string (Crcore.Coding.value enc.E.coding a f.E.hi) = "retired")
       enc.E.units)

let test_implications_shape () =
  let spec = Fixtures.george_spec () in
  let enc = E.encode spec in
  (* ϕ5 instances on George have exactly one premise (the status fact) *)
  let phi5_instances =
    List.filter
      (fun ic ->
        match ic.E.source with
        | E.From_constraint k -> k = 4 (* index of prec(status)->prec(job) *)
        | _ -> false)
      enc.E.implications
  in
  Alcotest.(check bool) "phi5 instantiated" true (List.length phi5_instances > 0);
  List.iter
    (fun ic -> Alcotest.(check int) "single premise" 1 (List.length ic.E.premise))
    phi5_instances

let test_cfd_encoding () =
  let spec = Fixtures.edith_spec () in
  let enc = E.encode spec in
  let cfd_imps =
    List.filter (fun ic -> match ic.E.source with E.From_cfd _ -> true | _ -> false) enc.E.implications
  in
  (* each CFD: one implication per other adom-prefix city value — the two
     other cities plus the reserved null (3 each) *)
  Alcotest.(check int) "cfd implication count" 6 (List.length cfd_imps);
  List.iter
    (fun ic ->
      (* premise: the other AC values (incl. the reserved null) below the
         pattern's AC *)
      Alcotest.(check int) "cfd premise size" 3 (List.length ic.E.premise))
    cfd_imps

let test_relevant_gamma () =
  let schema = Schema.make [ "x"; "y" ] in
  let e =
    Entity.make schema
      [ Tuple.make schema [ Value.Str "a"; Value.Str "p" ];
        Tuple.make schema [ Value.Str "b"; Value.Str "q" ] ]
  in
  let g1 = Cfd.Constant_cfd.make [ ("x", Value.Str "a") ] ("y", Value.Str "p") in
  let g2 = Cfd.Constant_cfd.make [ ("x", Value.Str "ZZZ") ] ("y", Value.Str "p") in
  let rel = E.relevant_gamma e [ g1; g2 ] in
  Alcotest.(check (list int)) "only firing cfd kept" [ 0 ] (List.map fst rel)

let test_structural_axioms_counts () =
  (* for universe sizes d: transitivity d(d-1)(d-2), asymmetry d(d-1)/2,
     totality (exact only) d(d-1)/2 — here d = 4: three values plus the
     reserved null *)
  let schema = Schema.make [ "x" ] in
  let mk v = Tuple.make schema [ Value.Str v ] in
  let e = Entity.make schema [ mk "a"; mk "b"; mk "c" ] in
  let spec = Crcore.Spec.make e ~orders:[] ~sigma:[] ~gamma:[] in
  let paper = E.encode ~mode:E.Paper spec in
  let exact = E.encode ~mode:E.Exact spec in
  Alcotest.(check int) "paper structural" ((4 * 3 * 2) + 6) paper.E.n_structural;
  Alcotest.(check int) "exact structural" ((4 * 3 * 2) + 12) exact.E.n_structural;
  Alcotest.(check int) "nvars d(d-1)" 12 paper.E.cnf.Sat.Cnf.nvars

(* The reserved-null slot at work: a fresh tuple carrying only known
   values and nulls keeps every universe — and hence the variable
   numbering — unchanged, so [extend] serves a [Delta]; a genuinely new
   value still renumbers, with the trailing reserved null floating to a
   later id rather than breaking the prefix condition. *)
let test_extend_null_is_delta () =
  let schema = Schema.make [ "x"; "y" ] in
  let e =
    Entity.make schema
      [
        Tuple.make schema [ Value.Str "a"; Value.Str "p" ];
        Tuple.make schema [ Value.Str "b"; Value.Str "q" ];
      ]
  in
  let spec = Crcore.Spec.make e ~orders:[] ~sigma:[] ~gamma:[] in
  let enc = E.encode spec in
  let null_spec =
    Crcore.Spec.extend_with_tuple spec
      (Tuple.make schema [ Value.Str "a"; Value.Null ])
      ~current_attrs:[ "x" ]
  in
  (match E.extend enc null_spec with
  | Some (E.Delta (enc', _)) ->
      Alcotest.(check int) "numbering unchanged" (Crcore.Coding.nvars enc.E.coding)
        (Crcore.Coding.nvars enc'.E.coding)
  | Some (E.Renumbered _) -> Alcotest.fail "null-only extension renumbered"
  | None -> Alcotest.fail "null-only extension rejected");
  let fresh_spec =
    Crcore.Spec.extend_with_tuple spec
      (Tuple.make schema [ Value.Str "c"; Value.Str "p" ])
      ~current_attrs:[ "x" ]
  in
  match E.extend enc fresh_spec with
  | Some (E.Renumbered enc') ->
      let u = Crcore.Coding.universe enc'.E.coding 0 in
      Alcotest.(check int) "x universe grew" 4 (Array.length u);
      Alcotest.(check bool) "null floated behind the new value" true
        (Value.is_null u.(3) && Value.equal u.(2) (Value.Str "c"))
  | Some (E.Delta _) -> Alcotest.fail "new-value extension took the delta path"
  | None -> Alcotest.fail "new-value extension rejected"

let test_var_fact_roundtrip () =
  let enc = E.encode (Fixtures.george_spec ()) in
  List.iter
    (fun (f, _) ->
      let v = E.var_of_fact enc f in
      let f' = E.fact_of_var enc v in
      Alcotest.(check bool) "fact round trip" true (f = f'))
    enc.E.units

let prop_cnf_well_formed =
  QCheck.Test.make ~count:200 ~name:"encoded CNF is well-formed in both modes" Fixtures.qcheck_spec
    (fun spec ->
      List.for_all
        (fun mode ->
          let enc = E.encode ~mode spec in
          let n = enc.E.cnf.Sat.Cnf.nvars in
          n = Crcore.Coding.nvars enc.E.coding
          && List.for_all
               (fun c -> Array.for_all (fun l -> Sat.Lit.var l < n) c)
               enc.E.cnf.Sat.Cnf.clauses)
        [ E.Paper; E.Exact ])

(* The template contract: the two-stage pipeline (compile the spec's
   shape once, stamp the entity in) yields exactly the encoding the
   one-stage [encode] builds — same universes, numbering, clauses and
   instance lists, in the same order — so the engine may serve any
   same-shape entity from a template without changing a single answer. *)
let same_encoding (a : E.t) (b : E.t) =
  a.E.cnf.Sat.Cnf.nvars = b.E.cnf.Sat.Cnf.nvars
  && a.E.cnf.Sat.Cnf.clauses = b.E.cnf.Sat.Cnf.clauses
  && a.E.units = b.E.units
  && a.E.implications = b.E.implications
  && a.E.sigma_insts = b.E.sigma_insts
  && a.E.gamma_imps = b.E.gamma_imps
  && a.E.vetoes = b.E.vetoes
  && a.E.n_structural = b.E.n_structural
  &&
  let arity = Schema.arity (Crcore.Coding.schema a.E.coding) in
  List.for_all
    (fun at ->
      Crcore.Coding.universe a.E.coding at = Crcore.Coding.universe b.E.coding at)
    (List.init arity Fun.id)

let prop_template_instantiate_bit_identical =
  QCheck.Test.make ~count:500
    ~name:"template + instantiate bit-identical to direct encode (both modes)"
    Fixtures.qcheck_spec
    (fun spec ->
      List.for_all
        (fun mode ->
          let direct = E.encode ~mode spec in
          let tpl = E.template ~mode spec in
          let staged = E.instantiate tpl spec in
          E.template_matches tpl spec && same_encoding direct staged)
        [ E.Paper; E.Exact ])

let prop_exact_has_more_clauses =
  QCheck.Test.make ~count:100 ~name:"exact mode adds clauses" Fixtures.qcheck_spec (fun spec ->
      let p = E.encode ~mode:E.Paper spec in
      let e = E.encode ~mode:E.Exact spec in
      Sat.Cnf.nclauses e.E.cnf >= Sat.Cnf.nclauses p.E.cnf)

let () =
  Alcotest.run "encode"
    [
      ( "coding",
        [
          Alcotest.test_case "universes" `Quick test_coding_universes;
          Alcotest.test_case "var bijection" `Quick test_coding_bijection;
          Alcotest.test_case "foreign CFD constant" `Quick test_coding_foreign_constant;
        ] );
      ( "omega",
        [
          Alcotest.test_case "order units" `Quick test_units_from_orders;
          Alcotest.test_case "null lowest" `Quick test_null_lowest_units;
          Alcotest.test_case "premise-free instances" `Quick test_premise_free_instances_are_units;
          Alcotest.test_case "implication shape" `Quick test_implications_shape;
          Alcotest.test_case "cfd encoding" `Quick test_cfd_encoding;
          Alcotest.test_case "relevant_gamma" `Quick test_relevant_gamma;
          Alcotest.test_case "structural axiom counts" `Quick test_structural_axioms_counts;
          Alcotest.test_case "null extension stays delta" `Quick test_extend_null_is_delta;
          Alcotest.test_case "fact/var round trip" `Quick test_var_fact_roundtrip;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_cnf_well_formed;
            prop_exact_has_more_clauses;
            prop_template_instantiate_bit_identical;
          ] );
    ]
