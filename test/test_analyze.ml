(* The spec linter: one positive and one negative unit case per
   diagnostic code, SAT cross-checks that every E-level construction is
   indeed unsatisfiable, and qcheck properties tying the analysis to the
   solver-backed semantics (soundness: an E-level diagnostic implies the
   encoding is unsatisfiable; the engine pre-phase never changes what a
   batch resolves). *)

module A = Crcore.Analyze
module E = Crcore.Engine
module F = Crcore.Framework

let parse = Currency.Parser.parse_exn

let mk_cfd lhs (battr, bval) =
  Cfd.Constant_cfd.make
    (List.map (fun (a, v) -> (a, Value.of_string v)) lhs)
    (battr, Value.of_string bval)

let edge attr lo hi = { Crcore.Spec.attr; lo; hi }

(* all unit cases run over the paper's Edith entity (Fig. 2): adoms
   name = {Edith Shain}, status = {working, retired, deceased},
   job = {nurse, n/a}, city = {NY, SFC, LA}, AC = {212, 415, 213} *)
let mk ?(orders = []) ?(sigma = []) ?(gamma = []) () =
  Crcore.Spec.make Fixtures.edith_entity ~orders ~sigma ~gamma

let codes spec = List.map (fun (d : A.diagnostic) -> d.A.code) (A.analyze spec)
let check_has msg code spec = Alcotest.(check bool) msg true (List.mem code (codes spec))
let check_not msg code spec = Alcotest.(check bool) msg false (List.mem code (codes spec))

let check_unsat msg spec =
  Alcotest.(check bool) msg false (Crcore.Validity.check (Crcore.Encode.encode spec))

let check_sat msg spec =
  Alcotest.(check bool) msg true (Crcore.Validity.check (Crcore.Encode.encode spec))

(* ---- errors ---- *)

let test_e001 () =
  let cyc = mk ~orders:[ edge "status" 0 1; edge "status" 1 0 ] () in
  check_has "value-level order cycle" "E001" cyc;
  check_unsat "SAT agrees: cyclic order is unsat" cyc;
  check_not "acyclic order" "E001" (mk ~orders:[ edge "status" 0 1 ] ())

let phi = parse {|t1[status] = "working" & t2[status] = "retired" -> prec(status)|}
let phi_mirror = parse {|t1[status] = "retired" & t2[status] = "working" -> prec(status)|}

let test_e002 () =
  let contradictory = mk ~sigma:[ phi; phi_mirror ] () in
  check_has "contradictory ground instances" "E002" contradictory;
  check_unsat "SAT agrees: contradictory closure is unsat" contradictory;
  check_not "one direction only" "E002" (mk ~sigma:[ phi ] ())

let test_e003 () =
  (* name is a singleton adom, so both LHS patterns are forced *)
  let g v = mk_cfd [ ("name", "Edith Shain") ] ("city", v) in
  let forced = mk ~gamma:[ g "NY"; g "LA" ] () in
  check_has "forced contradictory CFDs" "E003" forced;
  check_unsat "SAT agrees: forced conflict is unsat" forced;
  (* same conflict over a non-singleton adom is W006 territory, not E003 *)
  let g' v = mk_cfd [ ("AC", "213") ] ("city", v) in
  check_not "unforced conflict" "E003" (mk ~gamma:[ g' "NY"; g' "LA" ] ())

let test_e004 () =
  let dead_end = mk ~gamma:[ mk_cfd [ ("name", "Edith Shain") ] ("city", "Paris") ] () in
  check_has "forced LHS, RHS never occurs" "E004" dead_end;
  check_not "E004 subsumes the W002 veto warning" "W002" dead_end;
  check_unsat "SAT agrees: forced dead-end is unsat" dead_end;
  check_not "RHS in adom" "E004" (mk ~gamma:[ mk_cfd [ ("name", "Edith Shain") ] ("city", "NY") ] ())

(* ---- warnings ---- *)

let test_w001 () =
  check_has "dead CFD" "W001" (mk ~gamma:[ mk_cfd [ ("AC", "999") ] ("city", "NY") ] ());
  check_not "live CFD" "W001" (mk ~gamma:[ mk_cfd [ ("AC", "213") ] ("city", "LA") ] ())

let test_w002 () =
  let veto = mk ~gamma:[ mk_cfd [ ("AC", "213") ] ("city", "Paris") ] () in
  check_has "veto CFD" "W002" veto;
  check_sat "a veto alone stays satisfiable" veto;
  check_not "RHS occurs" "W002" (mk ~gamma:[ mk_cfd [ ("AC", "213") ] ("city", "LA") ] ())

let test_w003 () =
  let vacuous = parse {|t1[status] = "fired" & t2[status] = "working" -> prec(status)|} in
  check_has "no instance on this entity" "W003" (mk ~sigma:[ vacuous ] ());
  check_not "instantiating constraint" "W003" (mk ~sigma:[ phi ] ())

let test_w004 () =
  check_has "duplicate edge" "W004" (mk ~orders:[ edge "status" 0 1; edge "status" 0 1 ] ());
  check_not "distinct edges" "W004" (mk ~orders:[ edge "status" 0 1; edge "status" 1 2 ] ())

let test_w005 () =
  (* Edith tuples 1 and 2 both hold job = "n/a" *)
  check_has "equal-value edge" "W005" (mk ~orders:[ edge "job" 1 2 ] ());
  check_not "differing values" "W005" (mk ~orders:[ edge "status" 0 1 ] ())

let test_w006 () =
  let g v = mk_cfd [ ("AC", "213") ] ("city", v) in
  let conflict = mk ~gamma:[ g "LA"; g "NY" ] () in
  check_has "unifiable LHS, contradictory RHS" "W006" conflict;
  check_sat "unforced conflict stays satisfiable" conflict;
  check_not "disjoint LHS patterns" "W006"
    (mk ~gamma:[ mk_cfd [ ("AC", "213") ] ("city", "LA"); mk_cfd [ ("AC", "212") ] ("city", "NY") ] ())

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec has i = i + m <= n && (String.sub s i m = sub || has (i + 1)) in
  has 0

let test_e005 () =
  (* the saturation fixpoint proves unsatisfiability and the report
     carries the derivation chain *)
  let contradictory = mk ~sigma:[ phi; phi_mirror ] () in
  let ds = A.analyze contradictory in
  (match List.find_opt (fun (d : A.diagnostic) -> d.A.code = "E005") ds with
  | None -> Alcotest.fail "expected an E005 static refutation"
  | Some d ->
      Alcotest.(check bool) "severity" true (d.A.severity = A.Error);
      Alcotest.(check bool) "certificate chain printed" true (contains d.A.message "sigma["));
  check_not "satisfiable spec" "E005" (mk ~sigma:[ phi ] ())

let test_w007 () =
  (* semantic subsumption across distinct constraints: the direct
     status->job shortcut is implied by phi composed with phi5 *)
  let phi5 = parse {|prec(status) -> prec(job)|} in
  let shortcut = parse {|t1[status] = "working" & t2[status] = "retired" -> prec(job)|} in
  let spec = mk ~sigma:[ phi; phi5; shortcut ] () in
  (match
     List.find_opt (fun (d : A.diagnostic) -> d.A.code = "W007") (A.analyze spec)
   with
  | None -> Alcotest.fail "expected the shortcut to be flagged W007"
  | Some d -> Alcotest.(check bool) "flagged at the shortcut" true (d.A.subject = A.Sigma 2));
  check_not "lone constraint carries its instances" "W007" (mk ~sigma:[ phi ] ());
  check_not "composition members are not subsumed" "W007" (mk ~sigma:[ phi; phi5 ] ())

(* ---- info ---- *)

let test_i001 () =
  let s1 = parse {|prec(status) -> prec(job)|} in
  check_has "sub-conjunction premise" "I001"
    (mk ~sigma:[ s1; parse {|prec(status) & prec(city) -> prec(job)|} ] ());
  check_not "different conclusions" "I001"
    (mk ~sigma:[ s1; parse {|prec(status) & prec(city) -> prec(county)|} ] ())

let test_i002 () =
  let c1 = mk_cfd [ ("AC", "212") ] ("city", "NY") in
  check_has "sub-pattern LHS" "I002"
    (mk ~gamma:[ c1; mk_cfd [ ("AC", "212"); ("zip", "10036") ] ("city", "NY") ] ());
  check_not "different RHS" "I002"
    (mk ~gamma:[ c1; mk_cfd [ ("AC", "212"); ("zip", "10036") ] ("city", "SFC") ] ())

let test_i003 () =
  check_has "transitively implied edge" "I003"
    (mk ~orders:[ edge "status" 0 1; edge "status" 1 2; edge "status" 0 2 ] ());
  check_not "chain only" "I003" (mk ~orders:[ edge "status" 0 1; edge "status" 1 2 ] ())

let test_i004 () =
  (* the explicit working < retired edge restates what phi derives *)
  check_has "edge derivable from Σ" "I004" (mk ~orders:[ edge "status" 0 1 ] ~sigma:[ phi ] ());
  check_not "novel edge" "I004" (mk ~orders:[ edge "status" 0 1 ] ());
  (* an edge already flagged as a duplicate is not double-reported: only
     the first copy gets the derivability note *)
  let dup = mk ~orders:[ edge "status" 0 1; edge "status" 0 1 ] ~sigma:[ phi ] () in
  Alcotest.(check int) "one I004 for the duplicated edge" 1
    (List.length (List.filter (fun c -> c = "I004") (codes dup)))

(* ---- report shape ---- *)

let test_ordering_and_severity () =
  (* an error and a warning together: errors always sort first *)
  let spec =
    mk
      ~orders:[ edge "status" 0 1; edge "status" 1 0 ]
      ~sigma:[ parse {|t1[status] = "fired" & t2[status] = "working" -> prec(status)|} ]
      ()
  in
  let ds = A.analyze spec in
  (match ds with
  | d :: _ -> Alcotest.(check bool) "errors first" true (d.A.severity = A.Error)
  | [] -> Alcotest.fail "expected diagnostics");
  Alcotest.(check bool) "has_errors" true (A.has_errors ds);
  Alcotest.(check bool) "max severity is Error" true (A.max_severity ds = Some A.Error);
  Alcotest.(check bool) "clean report" true (A.max_severity (A.analyze (mk ())) = None)

let test_spans_attached () =
  let vacuous = parse {|t1[status] = "fired" & t2[status] = "working" -> prec(status)|} in
  let span = { Currency.Parser.line = 3; col_start = 1; col_end = 42 } in
  let ds = A.analyze ~sigma_spans:[| Some span |] (mk ~sigma:[ vacuous ] ()) in
  let w003 = List.find (fun (d : A.diagnostic) -> d.A.code = "W003") ds in
  Alcotest.(check bool) "span carried through" true (w003.A.span = Some span)

let test_errors_only_unit () =
  let cyc = mk ~orders:[ edge "status" 0 1; edge "status" 1 0 ] ~sigma:[ phi; phi_mirror ] () in
  let eo = A.analyze ~errors_only:true cyc in
  Alcotest.(check bool) "non-empty" true (eo <> []);
  Alcotest.(check bool) "only E codes" true
    (List.for_all (fun (d : A.diagnostic) -> d.A.severity = A.Error) eo);
  let keys = List.map (fun (d : A.diagnostic) -> (d.A.code, d.A.subject)) eo in
  Alcotest.(check bool) "one diagnostic per (code, subject)" true
    (List.length keys = List.length (List.sort_uniq compare keys));
  Alcotest.(check (list string)) "clean spec" []
    (List.map (fun (d : A.diagnostic) -> d.A.code) (A.analyze ~errors_only:true (mk ())))

(* ---- engine pre-phase ---- *)

let test_engine_lint_rejected () =
  let spec () =
    mk
      ~orders:[ edge "status" 0 1; edge "status" 1 0 ]
      ~sigma:Fixtures.sigma ~gamma:Fixtures.gamma ()
  in
  let r, st = E.resolve ~user:F.silent (spec ()) in
  Alcotest.(check bool) "rejected by lint" true st.E.lint_rejected;
  Alcotest.(check int) "no solver built" 0 st.E.solvers_built;
  Alcotest.(check bool) "invalid" false r.E.valid;
  let r', st' =
    E.resolve ~config:{ E.default_config with lint = false } ~user:F.silent (spec ())
  in
  Alcotest.(check bool) "lint off solves" true (st'.E.solvers_built >= 1);
  Alcotest.(check bool) "identical outcome either way" true
    (r.E.resolved = r'.E.resolved && r.E.valid = r'.E.valid && r.E.rounds = r'.E.rounds
   && r.E.per_round_known = r'.E.per_round_known)

let test_engine_lint_clean_passthrough () =
  let r, st = E.resolve ~user:F.silent (Fixtures.edith_spec ()) in
  Alcotest.(check bool) "not rejected" false st.E.lint_rejected;
  Alcotest.(check bool) "solved normally" true (st.E.solvers_built >= 1 && r.E.valid)

(* ---- properties ---- *)

let prop_errors_sound =
  (* the tentpole guarantee: an E-level diagnostic means the SAT encoding
     of the specification is unsatisfiable, no exceptions *)
  QCheck.Test.make ~count:1000 ~name:"E-level diagnostic implies unsat encoding"
    Fixtures.qcheck_spec (fun spec ->
      (not (A.has_errors (A.analyze spec)))
      || not (Crcore.Validity.check (Crcore.Encode.encode spec)))

let prop_errors_only_agrees =
  QCheck.Test.make ~count:500
    ~name:"errors_only: same has_errors verdict, deduped subset of the full report's errors"
    Fixtures.qcheck_spec (fun spec ->
      let full = A.analyze spec in
      let eo = A.analyze ~errors_only:true spec in
      let keys = List.map (fun (d : A.diagnostic) -> (d.A.code, d.A.subject)) eo in
      A.has_errors eo = A.has_errors full
      && List.for_all (fun (d : A.diagnostic) -> d.A.severity = A.Error) eo
      && List.for_all (fun d -> List.mem d full) eo
      && List.length keys = List.length (List.sort_uniq compare keys))

let prop_lint_never_changes_results =
  (* clean specs are never rejected for lint-covered reasons: switching
     the pre-phase on cannot change what a batch resolves *)
  QCheck.Test.make ~count:250 ~name:"engine lint pre-phase never changes resolution results"
    Fixtures.qcheck_spec (fun spec ->
      let on, st = E.resolve ~config:E.default_config ~user:F.silent spec in
      let off, _ =
        E.resolve ~config:{ E.default_config with lint = false } ~user:F.silent spec
      in
      on.E.resolved = off.E.resolved
      && on.E.valid = off.E.valid
      && on.E.rounds = off.E.rounds
      && on.E.per_round_known = off.E.per_round_known
      && ((not st.E.lint_rejected) || not on.E.valid))

let () =
  Alcotest.run "analyze"
    [
      ( "errors",
        [
          Alcotest.test_case "E001 cyclic explicit order" `Quick test_e001;
          Alcotest.test_case "E002 contradictory closure" `Quick test_e002;
          Alcotest.test_case "E003 forced CFD conflict" `Quick test_e003;
          Alcotest.test_case "E004 forced dead-end CFD" `Quick test_e004;
          Alcotest.test_case "E005 static refutation" `Quick test_e005;
        ] );
      ( "warnings",
        [
          Alcotest.test_case "W001 dead CFD" `Quick test_w001;
          Alcotest.test_case "W002 veto CFD" `Quick test_w002;
          Alcotest.test_case "W003 vacuous constraint" `Quick test_w003;
          Alcotest.test_case "W004 duplicate edge" `Quick test_w004;
          Alcotest.test_case "W005 equal-value edge" `Quick test_w005;
          Alcotest.test_case "W006 possible CFD conflict" `Quick test_w006;
          Alcotest.test_case "W007 subsumed by closure" `Quick test_w007;
        ] );
      ( "info",
        [
          Alcotest.test_case "I001 subsumed constraint" `Quick test_i001;
          Alcotest.test_case "I002 subsumed CFD" `Quick test_i002;
          Alcotest.test_case "I003 implied edge" `Quick test_i003;
          Alcotest.test_case "I004 derivable edge" `Quick test_i004;
        ] );
      ( "report",
        [
          Alcotest.test_case "ordering and severity" `Quick test_ordering_and_severity;
          Alcotest.test_case "source spans" `Quick test_spans_attached;
          Alcotest.test_case "errors_only subset" `Quick test_errors_only_unit;
        ] );
      ( "engine",
        [
          Alcotest.test_case "lint-rejected session" `Quick test_engine_lint_rejected;
          Alcotest.test_case "clean passthrough" `Quick test_engine_lint_clean_passthrough;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ prop_errors_sound; prop_errors_only_agrees; prop_lint_never_changes_results ] );
    ]
