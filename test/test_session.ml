(* The session layer and the crsolved daemon: parity of incremental
   re-resolution with cold re-resolves over random interleaved arrival
   schedules, delta coalescing, memoized reads, store bounds (LRU + TTL),
   per-request budgets, baseline policies, the Config builder, and the
   wire protocol round trip. *)

module Cr = Conflict_resolution
module S = Cr.Session
module E = Cr.Engine

let values_equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Option.equal Value.equal x y) a b

(* ------------------------------------------------------------------ *)
(* Interleaved-arrival parity: replay an update log through live        *)
(* sessions (arrivals buffered until the first resolve, exactly like    *)
(* the daemon) and check every resolve point against a cold re-resolve  *)
(* of the accumulated specification.                                    *)
(* ------------------------------------------------------------------ *)

let replay_parity ?(simplified_vs_plain = false) ~seed ~n_entities ~size () =
  let ds = Datagen.Person.quick ~seed ~n_entities ~size () in
  let sigma = ds.Datagen.Types.sigma and gamma = ds.Datagen.Types.gamma in
  let log =
    Datagen.Update_log.replay
      ~params:{ Datagen.Update_log.default_params with seed = seed + 1000 }
      ds
  in
  (* the hot side always runs the default config, simplify included; with
     [simplified_vs_plain] the cold side is the naive, simplify-off config,
     pitting the inprocessed incremental sessions against plain solvers *)
  let cold_config = if simplified_vs_plain then E.naive_config else E.default_config in
  let store = S.Store.create ~config:Cr.Config.default () in
  let pending = Hashtbl.create 16 in
  let ok = ref true in
  List.iter
    (fun ev ->
      match ev with
      | Datagen.Update_log.Arrival { label; tuple } -> (
          match S.Store.find store label with
          | Some h -> S.ingest h ~tuples:[ tuple ] ()
          | None ->
              let ts, os = try Hashtbl.find pending label with Not_found -> ([], []) in
              Hashtbl.replace pending label (tuple :: ts, os))
      | Datagen.Update_log.Assert_order { label; order } -> (
          match S.Store.find store label with
          | Some h -> S.ingest h ~orders:[ order ] ()
          | None ->
              let ts, os = Hashtbl.find pending label in
              Hashtbl.replace pending label (ts, order :: os))
      | Datagen.Update_log.Resolve label ->
          let h =
            match S.Store.find store label with
            | Some h -> h
            | None ->
                let ts, os = Hashtbl.find pending label in
                Hashtbl.remove pending label;
                fst
                  (S.Store.get_or_create store label ~spec:(fun () ->
                       Cr.Spec.make
                         (Entity.make ds.Datagen.Types.schema (List.rev ts))
                         ~orders:(List.rev os) ~sigma ~gamma))
          in
          let r, _ = S.resolve h in
          (* cold side: re-resolve the session's accumulated spec from
             scratch — S.spec flushes any coalesced pending extension *)
          let cold, _ =
            E.resolve ~config:cold_config ~user:Cr.Framework.silent (S.spec h)
          in
          if
            not
              (values_equal r.E.resolved cold.E.resolved && r.E.valid = cold.E.valid)
          then ok := false;
          (* frozen-variable contract: the engine freezes every variable it
             may reference (Coding variables, backbone-probe assumptions,
             group-MaxSAT selectors, delta-extension clauses) before each
             simplify point, so BVE must never eliminate anything here *)
          if (S.stats h).E.solver.Sat.Solver.vars_eliminated <> 0 then ok := false)
    log.Datagen.Update_log.events;
  S.Store.clear store;
  !ok

let prop_interleaved_parity =
  QCheck.Test.make ~count:20 ~name:"session-incremental == cold re-resolve on random schedules"
    QCheck.(int_range 0 1000)
    (fun seed -> replay_parity ~seed ~n_entities:3 ~size:5 ())

(* Random interleaved schedules again, but the cold reference is the naive
   simplify-off config: backbone probes, group-MaxSAT selector assumptions
   and session delta extensions all land on a solver that has been through
   pre/inprocessing, and every resolve point must still agree with the
   plain solver — with no frozen variable ever eliminated (checked above). *)
let prop_simplified_session_parity =
  QCheck.Test.make ~count:20
    ~name:"simplified sessions == plain cold re-resolve; frozen vars survive"
    QCheck.(int_range 0 1000)
    (fun seed -> replay_parity ~simplified_vs_plain:true ~seed ~n_entities:3 ~size:5 ())

(* ------------------------------------------------------------------ *)
(* Session mechanics                                                    *)
(* ------------------------------------------------------------------ *)

let george_tuples () = Entity.tuples Fixtures.george_entity

let spec_of_tuples tuples =
  Cr.Spec.make (Entity.make Fixtures.schema tuples) ~orders:[] ~sigma:Fixtures.sigma
    ~gamma:Fixtures.gamma

let extensions (st : E.entity_stats) =
  st.E.delta_extensions + st.E.rebuilds_renumbered + st.E.rebuilds_impure

let test_coalesced_ingest () =
  match george_tuples () with
  | t0 :: rest ->
      let h = S.create (spec_of_tuples [ t0 ]) in
      let before = extensions (S.stats h) in
      (* several separate ingests, no resolve in between *)
      List.iter (fun t -> S.ingest h ~tuples:[ t ] ()) rest;
      let r, _ = S.resolve h in
      let after = extensions (S.stats h) in
      Alcotest.(check int) "k ingests, one extension" (before + 1) after;
      let cold, _ =
        E.resolve ~config:E.default_config ~user:Cr.Framework.silent
          (spec_of_tuples (george_tuples ()))
      in
      Alcotest.(check bool) "matches cold resolve" true
        (values_equal r.E.resolved cold.E.resolved && r.E.valid = cold.E.valid)
  | [] -> assert false

let test_memoized_reads () =
  let h = S.create (spec_of_tuples (george_tuples ())) in
  let r1, _ = S.resolve h in
  let solvers_after_first = (S.stats h).E.solvers_built in
  let r2, _ = S.resolve h in
  Alcotest.(check bool) "identical answer" true (values_equal r1.E.resolved r2.E.resolved);
  Alcotest.(check int) "no solver work on a repeated read" solvers_after_first
    (S.stats h).E.solvers_built;
  Alcotest.(check int) "both reads counted" 2 (S.resolves h);
  (* an ingest invalidates the memo: the next resolve recomputes *)
  S.ingest h
    ~orders:[ { Cr.Spec.attr = "status"; lo = 0; hi = 1 } ]
    ();
  let r3, _ = S.resolve h in
  Alcotest.(check bool) "still a result" true (Array.length r3.E.resolved = 8)

let test_order_ingest_is_delta () =
  let h = S.create (spec_of_tuples (george_tuples ())) in
  let _ = S.resolve h in
  let before = (S.stats h).E.delta_extensions in
  (* a pure order prepend leaves every value universe unchanged *)
  S.ingest h ~orders:[ { Cr.Spec.attr = "job"; lo = 0; hi = 1 } ] ();
  let _ = S.resolve h in
  Alcotest.(check int) "order assertion takes the Delta path" (before + 1)
    (S.stats h).E.delta_extensions

let test_closed_handle () =
  let h = S.create (spec_of_tuples (george_tuples ())) in
  S.close h;
  S.close h;
  (* idempotent *)
  Alcotest.(check bool) "closed" true (S.is_closed h);
  Alcotest.check_raises "ingest raises"
    (Invalid_argument "Session.ingest: closed handle") (fun () ->
      S.ingest h ~tuples:(george_tuples ()) ())

(* ------------------------------------------------------------------ *)
(* Store bounds                                                         *)
(* ------------------------------------------------------------------ *)

let spec_thunk () = spec_of_tuples (george_tuples ())

let test_store_lru_eviction () =
  let store =
    S.Store.create ~config:Cr.Config.(default |> with_session_cap 2) ()
  in
  let h1, created = S.Store.get_or_create store "a" ~spec:spec_thunk in
  Alcotest.(check bool) "a created" true created;
  let _ = S.Store.get_or_create store "b" ~spec:spec_thunk in
  (* touch a so b is the least recently used *)
  let _ = S.Store.find store "a" in
  let _ = S.Store.get_or_create store "c" ~spec:spec_thunk in
  Alcotest.(check int) "capacity held" 2 (S.Store.live store);
  Alcotest.(check bool) "b evicted" true (S.Store.find store "b" = None);
  Alcotest.(check bool) "a survives" true (S.Store.find store "a" <> None);
  let stats = S.Store.stats store in
  Alcotest.(check int) "one LRU eviction" 1 stats.S.Store.evicted_lru;
  Alcotest.(check bool) "evicted handle closed" true (S.is_closed h1 = false);
  S.Store.clear store;
  Alcotest.(check int) "clear empties" 0 (S.Store.live store);
  Alcotest.(check bool) "cleared handles closed" true (S.is_closed h1)

let test_store_ttl_sweep () =
  let store =
    S.Store.create ~config:Cr.Config.(default |> with_session_ttl (Some 0.02)) ()
  in
  let _ = S.Store.get_or_create store "a" ~spec:spec_thunk in
  let _ = S.Store.get_or_create store "b" ~spec:spec_thunk in
  Alcotest.(check int) "nothing stale yet" 0 (S.Store.sweep store);
  Thread.delay 0.05;
  Alcotest.(check int) "both idle sessions swept" 2 (S.Store.sweep store);
  Alcotest.(check int) "none live" 0 (S.Store.live store);
  Alcotest.(check int) "ttl evictions counted" 2 (S.Store.stats store).S.Store.evicted_ttl

(* ------------------------------------------------------------------ *)
(* Per-request budgets on a long-lived session                          *)
(* ------------------------------------------------------------------ *)

let test_budget_exhaustion_mid_stream () =
  (* an already-expired wall: every request must degrade, and every
     request must still answer — the budget is re-armed per request, not
     spent once for the session's life *)
  let config = Cr.Config.(default |> with_budget_ms (Some 0.)) in
  match george_tuples () with
  | t0 :: t1 :: rest ->
      let h = S.create ~config (spec_of_tuples [ t0; t1 ]) in
      let r1, _ = S.resolve h in
      Alcotest.(check bool) "first request degrades" true (r1.E.level <> E.Exact);
      Alcotest.(check bool) "with a recorded reason" true (r1.E.degrade_reason <> None);
      S.ingest h ~tuples:rest ();
      let r2, _ = S.resolve h in
      Alcotest.(check bool) "mid-stream request still answers" true
        (Array.length r2.E.resolved = 8);
      Alcotest.(check bool) "and degrades again" true (r2.E.level <> E.Exact);
      (* same stream under no budget: exact, and the degraded answers
         never blocked the session from accumulating state *)
      let h' = S.create (spec_of_tuples (george_tuples ())) in
      let r3, _ = S.resolve h' in
      Alcotest.(check bool) "unbudgeted resolve is exact" true (r3.E.level = E.Exact)
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Baselines and the Config builder                                     *)
(* ------------------------------------------------------------------ *)

let test_baseline_policies () =
  let h = S.create (spec_of_tuples (george_tuples ())) in
  let lww = S.baseline h Cr.Pick.Last_update_wins in
  let local = S.baseline h Cr.Pick.Accept_local in
  let spec = S.spec h in
  Alcotest.(check bool) "lww == Pick.run lww" true
    (lww = Cr.Pick.run ~strategy:Cr.Pick.Last_update_wins spec);
  Alcotest.(check bool) "local == Pick.run local" true
    (local = Cr.Pick.run ~strategy:Cr.Pick.Accept_local spec);
  (* newest non-null per attribute vs oldest: George's status column *)
  let attr_of vs name =
    let rec idx i = function
      | [] -> assert false
      | a :: _ when a = name -> i
      | _ :: t -> idx (i + 1) t
    in
    vs.(idx 0 (Schema.attr_names Fixtures.schema))
  in
  Alcotest.(check string) "lww takes the newest status" "unemployed"
    (Value.to_string (attr_of lww "status"));
  Alcotest.(check string) "accept-local keeps the oldest" "working"
    (Value.to_string (attr_of local "status"))

let test_strategy_of_string () =
  let check s expected =
    Alcotest.(check bool) s true (Cr.Pick.strategy_of_string s = Some expected)
  in
  check "lww" Cr.Pick.Last_update_wins;
  check "last_update_wins" Cr.Pick.Last_update_wins;
  check "local" Cr.Pick.Accept_local;
  check "accept_local" Cr.Pick.Accept_local;
  check "favoured" Cr.Pick.Favoured;
  Alcotest.(check bool) "unknown rejected" true
    (Cr.Pick.strategy_of_string "no-such-policy" = None)

let test_config_builder () =
  let c =
    Cr.Config.(
      default
      |> with_mode Exact
      |> with_max_rounds 9
      |> with_jobs 4
      |> with_budget_conflicts (Some 123)
      |> with_max_degrade E.PartialDeduce
      |> with_pick Cr.Pick.Last_update_wins
      |> with_session_cap 0
      |> with_session_ttl (Some 7.5))
  in
  let ec = Cr.Config.to_engine c in
  Alcotest.(check bool) "mode" true (ec.E.mode = Exact);
  Alcotest.(check int) "max rounds" 9 ec.E.max_rounds;
  Alcotest.(check int) "jobs" 4 ec.E.jobs;
  Alcotest.(check bool) "budget" true (ec.E.budget_conflicts = Some 123);
  Alcotest.(check bool) "ladder floor" true (ec.E.max_degrade = E.PartialDeduce);
  Alcotest.(check bool) "pick strategy" true
    (ec.E.pick_strategy = Cr.Pick.Last_update_wins);
  Alcotest.(check int) "cap clamped to 1" 1 (Cr.Config.max_sessions c);
  Alcotest.(check bool) "ttl kept" true (Cr.Config.session_ttl c = Some 7.5)

let test_one_shot_resolve_wrapper () =
  (* the deprecated one-shot facade is Session.create/resolve/close *)
  let r, _ = Cr.resolve (spec_of_tuples (george_tuples ())) in
  let h = S.create (spec_of_tuples (george_tuples ())) in
  let r', _ = S.resolve h in
  S.close h;
  Alcotest.(check bool) "one-shot == session" true
    (values_equal r.E.resolved r'.E.resolved && r.E.valid = r'.E.valid)

(* ------------------------------------------------------------------ *)
(* Daemon round trip                                                    *)
(* ------------------------------------------------------------------ *)

let csv_line values = String.trim (Csv.to_string [ values ])

let test_daemon_socket_roundtrip () =
  let socket_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "crsolved-test-%d.sock" (Unix.getpid ()))
  in
  let d = Crserver.Daemon.create ~sigma:Fixtures.sigma ~gamma:Fixtures.gamma () in
  let server = Thread.create (fun () -> Crserver.Daemon.serve d ~socket_path) () in
  let rec await n =
    if n = 0 then Alcotest.fail "daemon socket never appeared"
    else if Sys.file_exists socket_path then ()
    else (
      Thread.delay 0.02;
      await (n - 1))
  in
  await 250;
  let header = csv_line (Schema.attr_names Fixtures.schema) in
  let rows =
    List.map (fun t -> csv_line (List.map Value.to_string (Tuple.values t)))
      (george_tuples ())
  in
  let starts_with p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p in
  let expect_ok r = Alcotest.(check bool) ("ok: " ^ r) true (starts_with {|{"ok":true|} r) in
  let expect_err r =
    Alcotest.(check bool) ("err: " ^ r) true (starts_with {|{"ok":false|} r)
  in
  let requests =
    [ "PING"; Printf.sprintf "OPEN g|%s" header ]
    @ List.map (fun r -> Printf.sprintf "INGEST g|%s" r) rows
    @ [
        "RESOLVE g";
        "RESOLVE g" (* memoized read *);
        "ORDER g|job|0|1";
        "RESOLVE g";
        "BASELINE g|lww";
        "BASELINE g|local";
        "STATS";
        "CLOSE g";
      ]
  in
  let responses = Crserver.Daemon.request_many ~socket_path requests in
  List.iter expect_ok responses;
  (* failure shapes: unknown command, unknown label, bogus policy *)
  expect_err (Crserver.Daemon.request ~socket_path "FROBNICATE g");
  expect_err (Crserver.Daemon.request ~socket_path "RESOLVE never-opened");
  let reopened =
    Crserver.Daemon.request_many ~socket_path
      [ Printf.sprintf "OPEN g2|%s" header;
        Printf.sprintf "INGEST g2|%s" (List.hd rows);
        "BASELINE g2|no-such-policy" ]
  in
  (match reopened with
  | [ a; b; c ] ->
      expect_ok a;
      expect_ok b;
      expect_err c
  | _ -> Alcotest.fail "pipelined responses lost");
  expect_ok (Crserver.Daemon.request ~socket_path "SHUTDOWN");
  Thread.join server;
  Alcotest.(check bool) "socket removed on shutdown" false (Sys.file_exists socket_path)

let () =
  Alcotest.run "session"
    [
      ( "parity",
        [
          QCheck_alcotest.to_alcotest prop_interleaved_parity;
          QCheck_alcotest.to_alcotest prop_simplified_session_parity;
        ] );
      ( "session",
        [
          Alcotest.test_case "coalesced ingest" `Quick test_coalesced_ingest;
          Alcotest.test_case "memoized reads" `Quick test_memoized_reads;
          Alcotest.test_case "order ingest is delta" `Quick test_order_ingest_is_delta;
          Alcotest.test_case "closed handle" `Quick test_closed_handle;
        ] );
      ( "store",
        [
          Alcotest.test_case "LRU eviction" `Quick test_store_lru_eviction;
          Alcotest.test_case "TTL sweep" `Quick test_store_ttl_sweep;
        ] );
      ( "budgets",
        [ Alcotest.test_case "exhaustion mid-stream" `Quick test_budget_exhaustion_mid_stream ] );
      ( "config_and_baselines",
        [
          Alcotest.test_case "baseline policies" `Quick test_baseline_policies;
          Alcotest.test_case "strategy names" `Quick test_strategy_of_string;
          Alcotest.test_case "config builder" `Quick test_config_builder;
          Alcotest.test_case "one-shot wrapper" `Quick test_one_shot_resolve_wrapper;
        ] );
      ( "daemon",
        [ Alcotest.test_case "socket round trip" `Quick test_daemon_socket_roundtrip ] );
    ]
