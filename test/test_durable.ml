(* Durability: WAL framing and torn tails, lossless snapshot round
   trips, crash-recovery parity over random kill points, at-least-once
   dedup, graceful drain, idle-connection reaping, and the retrying
   client. *)

module Cr = Conflict_resolution
module W = Durable.Wal
module Snap = Durable.Snapshot
module D = Crserver.Daemon
module P = Crserver.Protocol

(* ------------------------------------------------------------------ *)
(* Scratch directories                                                  *)
(* ------------------------------------------------------------------ *)

let dir_counter = ref 0

let tmp_dir () =
  incr dir_counter;
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "crdur-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  W.mkdir_p d;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let with_dir f =
  let dir = tmp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* The semantically meaningful core of a RESOLVE reply: validity and the
   resolved tuple — session counters (resolves, solvers_built, ...)
   legitimately differ between a recovered and an uninterrupted run. *)
let resolve_core r =
  let find needle =
    let nl = String.length needle in
    let rec go i =
      if i + nl > String.length r then None
      else if String.sub r i nl = needle then Some i
      else go (i + 1)
    in
    go 0
  in
  let upto_char c from = try String.index_from r from c with Not_found -> String.length r - 1 in
  let valid =
    match find {|"valid":|} with
    | Some i -> String.sub r i (upto_char ',' i - i)
    | None -> "?"
  in
  let resolved =
    match find {|"resolved":{|} with
    | Some i -> String.sub r i (upto_char '}' i - i + 1)
    | None -> r
  in
  valid ^ " " ^ resolved

(* ------------------------------------------------------------------ *)
(* WAL: record lines, framing, torn tails, rotation                     *)
(* ------------------------------------------------------------------ *)

let sample_records =
  [
    { W.seq = Some 1; event = W.Open { label = "e1"; header = [ "name"; "status" ] } };
    { W.seq = Some 2; event = W.Ingest { label = "e1"; row = [ "Alice"; "working" ] } };
    (* values with the wire's special characters: commas, pipes, '@' *)
    { W.seq = Some 3; event = W.Ingest { label = "e1"; row = [ "a,b"; "x|y@z" ] } };
    { W.seq = None; event = W.Order { label = "e1"; attr = "status"; lo = 0; hi = 1 } };
    { W.seq = Some 9; event = W.Close "e1" };
  ]

let test_record_line_roundtrip () =
  List.iter
    (fun r ->
      match W.record_of_line (W.record_to_line r) with
      | Ok r' -> Alcotest.(check bool) (W.record_to_line r) true (r = r')
      | Error m -> Alcotest.fail m)
    sample_records;
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (W.record_of_line "X nonsense"));
  Alcotest.(check bool) "bad seq rejected" true
    (Result.is_error (W.record_of_line "@x I e|a"))

let test_fsync_of_string () =
  Alcotest.(check bool) "always" true (W.fsync_of_string "always" = Ok W.Always);
  Alcotest.(check bool) "never" true (W.fsync_of_string "never" = Ok W.Never);
  Alcotest.(check bool) "interval" true (W.fsync_of_string "interval" = Ok (W.Interval 0.05));
  Alcotest.(check bool) "interval:0.5" true
    (W.fsync_of_string "interval:0.5" = Ok (W.Interval 0.5));
  Alcotest.(check bool) "negative rejected" true
    (Result.is_error (W.fsync_of_string "interval:-1"));
  Alcotest.(check bool) "bogus rejected" true (Result.is_error (W.fsync_of_string "bogus"))

let test_empty_log () =
  (* a missing directory replays as an empty history *)
  let rep = W.replay ~dir:"/nonexistent/crdur-nowhere" (fun _ -> ()) in
  Alcotest.(check int) "no records" 0 rep.W.records;
  Alcotest.(check bool) "not torn" false rep.W.torn;
  Alcotest.(check int) "no segments" 0 rep.W.segments

let test_wal_roundtrip_and_torn_tail () =
  with_dir (fun dir ->
      let w = W.open_writer ~fsync:W.Never ~dir () in
      List.iter (W.append w) sample_records;
      W.close_writer w;
      let got = ref [] in
      let rep = W.replay ~dir (fun r -> got := r :: !got) in
      Alcotest.(check int) "all records back" (List.length sample_records) rep.W.records;
      Alcotest.(check bool) "byte-exact round trip" true
        (List.rev !got = sample_records);
      Alcotest.(check bool) "clean tail" false rep.W.torn;
      (* crash mid-write: a partial frame (magic + a length that claims
         more bytes than exist) lands at the end of the live segment *)
      let seg = Filename.concat dir (Printf.sprintf "wal-%08d.log" 1) in
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 seg in
      output_string oc "\xD7\xFF\x00\x00\x00par";
      close_out oc;
      let rep2 = W.replay ~dir (fun _ -> ()) in
      Alcotest.(check int) "intact prefix survives" (List.length sample_records)
        rep2.W.records;
      Alcotest.(check bool) "torn tail detected" true rep2.W.torn;
      Alcotest.(check bool) "torn bytes counted" true (rep2.W.truncated_bytes > 0);
      (* repair truncated the file: the next replay is clean *)
      let rep3 = W.replay ~dir (fun _ -> ()) in
      Alcotest.(check bool) "repaired" false rep3.W.torn;
      Alcotest.(check int) "nothing lost by the repair" (List.length sample_records)
        rep3.W.records)

let test_wal_corrupt_record_stops_replay () =
  with_dir (fun dir ->
      let w = W.open_writer ~fsync:W.Never ~dir () in
      List.iter (W.append w) sample_records;
      W.close_writer w;
      (* flip one payload byte in the middle of the file: its CRC fails,
         and everything from there on is the torn tail *)
      let seg = Filename.concat dir (Printf.sprintf "wal-%08d.log" 1) in
      let size = (Unix.stat seg).Unix.st_size in
      let fd = Unix.openfile seg [ Unix.O_WRONLY ] 0o644 in
      ignore (Unix.lseek fd (size / 2) Unix.SEEK_SET);
      ignore (Unix.write fd (Bytes.of_string "\xAA") 0 1);
      Unix.close fd;
      let rep = W.replay ~dir ~repair:false (fun _ -> ()) in
      Alcotest.(check bool) "corruption detected" true rep.W.torn;
      Alcotest.(check bool) "replay stopped early" true
        (rep.W.records < List.length sample_records))

let test_wal_rotation_and_compaction () =
  with_dir (fun dir ->
      (* 1-byte segments: every append rotates first, one record per file *)
      let w = W.open_writer ~fsync:W.Never ~segment_bytes:1 ~dir () in
      List.iter (W.append w) sample_records;
      W.close_writer w;
      Alcotest.(check int) "one segment per record" (List.length sample_records)
        (List.length (W.segments ~dir));
      let rep = W.replay ~dir ~above:2 (fun _ -> ()) in
      Alcotest.(check bool) "replay above skips covered segments" true
        (rep.W.records < List.length sample_records);
      let removed = W.remove_upto ~dir 2 in
      Alcotest.(check int) "compaction removed covered segments" 2 removed;
      let rep2 = W.replay ~dir (fun _ -> ()) in
      Alcotest.(check int) "tail intact after compaction"
        (List.length sample_records - 2) rep2.W.records;
      (* a fresh writer never reuses an index *)
      let w2 = W.open_writer ~dir () in
      Alcotest.(check bool) "fresh segment past every file" true
        (W.current_segment w2 > List.length sample_records);
      W.close_writer w2)

(* ------------------------------------------------------------------ *)
(* Snapshots                                                            *)
(* ------------------------------------------------------------------ *)

let sample_snapshot =
  {
    Snap.upto = 3;
    events_applied = 42;
    entries =
      [
        {
          Snap.label = "e1";
          header = [ "name"; "kids"; "score" ];
          last_seq = 17;
          state =
            Snap.Replayable
              {
                (* the lossy corners of Value.of_string: a string that
                   looks like an int, floats with odd bit patterns *)
                tuples =
                  [
                    [ Value.Str "123"; Value.Int 123; Value.Float 0.1 ];
                    [ Value.Null; Value.Int (-7); Value.Float (-0.0) ];
                    [ Value.Str "a,b|c"; Value.Str ""; Value.Float infinity ];
                  ];
                orders = [ ("kids", 0, 1); ("score", 1, 2) ];
              };
        };
        { Snap.label = "gone"; header = [ "a" ]; last_seq = 3; state = Snap.Evicted };
      ];
  }

let test_snapshot_roundtrip () =
  with_dir (fun dir ->
      let path = Snap.save ~dir sample_snapshot in
      Alcotest.(check bool) "file exists" true (Sys.file_exists path);
      match Snap.load_latest ~dir with
      | None -> Alcotest.fail "snapshot did not load"
      | Some s ->
          Alcotest.(check bool) "bit-identical state" true (s = sample_snapshot);
          (* the Str "123" / Int 123 distinction is the lossless-codec
             point: a stringly round trip would collapse them *)
          (match s.Snap.entries with
          | { Snap.state = Snap.Replayable { tuples = (a :: b :: _) :: _; _ }; _ } :: _ ->
              Alcotest.(check bool) "Str survives" true (a = Value.Str "123");
              Alcotest.(check bool) "Int survives" true (b = Value.Int 123)
          | _ -> Alcotest.fail "unexpected snapshot shape"))

let test_snapshot_corrupt_falls_back () =
  with_dir (fun dir ->
      ignore (Snap.save ~dir { sample_snapshot with Snap.upto = 1; events_applied = 1 });
      let newest = Snap.save ~dir { sample_snapshot with Snap.upto = 2 } in
      (* tear the newest snapshot: drop its tail (and the end marker) *)
      let size = (Unix.stat newest).Unix.st_size in
      let fd = Unix.openfile newest [ Unix.O_WRONLY ] 0o644 in
      Unix.ftruncate fd (size / 2);
      Unix.close fd;
      match Snap.load_latest ~dir with
      | None -> Alcotest.fail "should fall back to the older snapshot"
      | Some s -> Alcotest.(check int) "older snapshot loaded" 1 s.Snap.upto)

(* ------------------------------------------------------------------ *)
(* Daemon recovery: kill points, dedup, torn tails, snapshots           *)
(* ------------------------------------------------------------------ *)

let csv_line values = String.trim (Csv.to_string [ values ])

let durable_config ?(snapshot_every = 0) dir =
  (* bound outside the local open: the Config accessor of the same name
     would shadow the parameter *)
  let se = snapshot_every in
  Cr.Config.(
    default |> with_wal_dir (Some dir) |> with_fsync W.Never |> with_snapshot_every se)

let req d line = fst (D.handle_line d line)

let expect_ok r =
  Alcotest.(check bool) ("ok: " ^ r) true (contains ~needle:{|"ok":true|} r)

(* George's history as a stamped at-least-once stream. *)
let george_lines =
  let header = csv_line (Schema.attr_names Fixtures.schema) in
  let rows =
    List.map (fun t -> csv_line (List.map Value.to_string (Tuple.values t)))
      (Entity.tuples Fixtures.george_entity)
  in
  [ Printf.sprintf "@1 OPEN g|%s" header ]
  @ List.mapi (fun i r -> Printf.sprintf "@%d INGEST g|%s" (i + 2) r) rows
  @ [ Printf.sprintf "@%d ORDER g|job|0|1" (2 + List.length rows) ]

let fresh_daemon ?config () =
  D.create ?config ~sigma:Fixtures.sigma ~gamma:Fixtures.gamma ()

(* Crash-recovery parity at one kill point: a victim daemon applies the
   first [k] events and is abandoned mid-flight (its WAL writer never
   closes — the in-process analogue of kill -9); a recovered daemon
   replays the WAL, the client re-sends the whole stamped stream, and
   the final answer must equal an uninterrupted run's. *)
let george_parity ~tear ~k =
  with_dir (fun dir ->
      let reference = fresh_daemon () in
      List.iter (fun l -> ignore (req reference l)) george_lines;
      let expected = resolve_core (req reference "RESOLVE g") in
      let victim = fresh_daemon ~config:(durable_config dir) () in
      List.iteri (fun i l -> if i < k then ignore (req victim l)) george_lines;
      if tear && k > 0 then begin
        (* the crash also tore the last frame *)
        match List.rev (W.segments ~dir) with
        | last :: _ ->
            let seg = Filename.concat dir (Printf.sprintf "wal-%08d.log" last) in
            let oc = open_out_gen [ Open_append; Open_binary ] 0o644 seg in
            output_string oc "\xD7\x40\x00";
            close_out oc
        | [] -> ()
      end;
      let recovered = fresh_daemon ~config:(durable_config dir) () in
      let health = req recovered "HEALTH" in
      expect_ok health;
      Alcotest.(check bool) "recovery reported" true
        (contains ~needle:{|"performed":true|} health);
      if tear && k > 0 then
        Alcotest.(check bool) "torn tail repaired" true
          (contains ~needle:{|"torn_tail_repaired":true|} health);
      (* at-least-once redelivery: every already-applied event must come
         back {"dup":true}, never re-apply *)
      List.iteri
        (fun i l ->
          let r = req recovered l in
          expect_ok r;
          if i < k then
            Alcotest.(check bool) ("dup: " ^ l) true (contains ~needle:{|"dup":true|} r))
        george_lines;
      let got = resolve_core (req recovered "RESOLVE g") in
      Alcotest.(check string) (Printf.sprintf "parity at kill point %d" k) expected got)

let test_recovery_every_kill_point () =
  for k = 0 to List.length george_lines do
    george_parity ~tear:false ~k
  done

let test_recovery_torn_tail_mid_stream () =
  george_parity ~tear:true ~k:(List.length george_lines / 2)

let test_duplicate_delivery_coalesces () =
  with_dir (fun dir ->
      let d = fresh_daemon ~config:(durable_config dir) () in
      List.iter (fun l -> expect_ok (req d l)) george_lines;
      let first = resolve_core (req d "RESOLVE g") in
      let applied_before = req d "STATS" in
      (* the whole stream again: every event is a duplicate *)
      List.iter
        (fun l ->
          let r = req d l in
          Alcotest.(check bool) ("dup: " ^ l) true (contains ~needle:{|"dup":true|} r))
        george_lines;
      Alcotest.(check string) "identical answer after redelivery" first
        (resolve_core (req d "RESOLVE g"));
      (* nothing was re-applied: the applied-events counter is unchanged
         and the dedup counter took the hits *)
      let stats = req d "STATS" in
      let applied s =
        let key = {|"events_applied":|} in
        let rec go i =
          if i + String.length key > String.length s then "?"
          else if String.sub s i (String.length key) = key then
            let j = i + String.length key in
            String.sub s j (String.index_from s j ',' - j)
          else go (i + 1)
        in
        go 0
      in
      Alcotest.(check string) "events_applied unchanged" (applied applied_before)
        (applied stats);
      Alcotest.(check bool) "dedup counted" true
        (contains ~needle:(Printf.sprintf {|"events_deduped":%d|} (List.length george_lines))
           stats))

let test_snapshot_with_no_tail () =
  with_dir (fun dir ->
      (* snapshot after every event: at the kill point the WAL tail past
         the newest snapshot is empty *)
      let victim = fresh_daemon ~config:(durable_config ~snapshot_every:1 dir) () in
      List.iter (fun l -> expect_ok (req victim l)) george_lines;
      let expected = resolve_core (req victim "RESOLVE g") in
      Alcotest.(check bool) "snapshots exist" true (Snap.indices ~dir <> []);
      let recovered = fresh_daemon ~config:(durable_config ~snapshot_every:1 dir) () in
      let health = req recovered "HEALTH" in
      Alcotest.(check bool) "state came from the snapshot" true
        (contains ~needle:{|"snapshot_loaded":true|} health);
      Alcotest.(check bool) "no tail to replay" true
        (contains ~needle:{|"wal_records_replayed":0|} health);
      Alcotest.(check string) "parity from snapshot alone" expected
        (resolve_core (req recovered "RESOLVE g")))

let test_recovery_skips_rejected_events () =
  with_dir (fun dir ->
      (* a hand-written log with events the apply path must reject: a
         wrong-arity row and an arrival for a never-opened entity (the
         shape a lint-rejecting spec produces) *)
      let w = W.open_writer ~fsync:W.Never ~dir () in
      List.iter (W.append w)
        [
          { W.seq = Some 1; event = W.Open { label = "e1"; header = [ "name"; "status" ] } };
          { W.seq = Some 2; event = W.Ingest { label = "e1"; row = [ "Alice"; "working" ] } };
          { W.seq = Some 3; event = W.Ingest { label = "e1"; row = [ "Bob"; "retired"; "EXTRA" ] } };
          { W.seq = None; event = W.Ingest { label = "ghost"; row = [ "x"; "y" ] } };
          { W.seq = Some 4; event = W.Ingest { label = "e1"; row = [ "Carol"; "retired" ] } };
        ];
      W.close_writer w;
      let config =
        Cr.Config.(default |> with_wal_dir (Some dir) |> with_fsync W.Never)
      in
      let d = D.create ~config ~sigma:[] ~gamma:[] () in
      let health = req d "HEALTH" in
      Alcotest.(check bool) "rejected events counted" true
        (contains ~needle:{|"rejected":2|} health);
      (* the good events still replayed: the entity resolves *)
      let r = req d "RESOLVE e1" in
      expect_ok r;
      Alcotest.(check bool) "ghost never materialised" true
        (contains ~needle:{|"ok":false|} (req d "RESOLVE ghost")))

(* Randomised kill points over datagen update streams: the full
   at-least-once contract — crash anywhere, recover, re-send everything,
   and every entity's final answer matches an uninterrupted daemon. *)
let protocol_lines ds log =
  let header = csv_line (Schema.attr_names ds.Datagen.Types.schema) in
  let opened = Hashtbl.create 8 in
  Datagen.Update_log.with_seqs log
  |> List.concat_map (fun (seq, ev) ->
         let open_line label =
           if Hashtbl.mem opened label then []
           else begin
             Hashtbl.add opened label ();
             [
               Printf.sprintf "@%d OPEN %s|%s" Datagen.Update_log.open_seq label header;
             ]
           end
         in
         match ev with
         | Datagen.Update_log.Arrival { label; tuple } ->
             open_line label
             @ [
                 Printf.sprintf "@%d INGEST %s|%s" (Option.get seq) label
                   (csv_line (List.map Value.to_string (Tuple.values tuple)));
               ]
         | Datagen.Update_log.Assert_order { label; order } ->
             open_line label
             @ [
                 Printf.sprintf "@%d ORDER %s|%s|%d|%d" (Option.get seq) label
                   order.Crcore.Spec.attr order.Crcore.Spec.lo order.Crcore.Spec.hi;
               ]
         | Datagen.Update_log.Resolve label -> [ "RESOLVE " ^ label ])

let crash_parity_once seed =
  let ds = Datagen.Person.quick ~seed ~n_entities:2 ~size:4 () in
  let log =
    Datagen.Update_log.replay
      ~params:{ Datagen.Update_log.default_params with seed = seed + 500; tail_reads = 1 }
      ds
  in
  let lines = protocol_lines ds log in
  let rng = Random.State.make [| seed |] in
  let k = Random.State.int rng (List.length lines + 1) in
  with_dir (fun dir ->
      let mk () =
        D.create ~config:(durable_config dir) ~sigma:ds.Datagen.Types.sigma
          ~gamma:ds.Datagen.Types.gamma ()
      in
      let reference =
        D.create ~sigma:ds.Datagen.Types.sigma ~gamma:ds.Datagen.Types.gamma ()
      in
      List.iter (fun l -> ignore (req reference l)) lines;
      let victim = mk () in
      List.iteri (fun i l -> if i < k then ignore (req victim l)) lines;
      let recovered = mk () in
      List.iter (fun l -> ignore (req recovered l)) lines;
      List.for_all
        (fun label ->
          resolve_core (req recovered ("RESOLVE " ^ label))
          = resolve_core (req reference ("RESOLVE " ^ label)))
        (Datagen.Update_log.labels log))

let prop_crash_recovery_parity =
  QCheck.Test.make ~count:10
    ~name:"crash anywhere + replay + redelivery == uninterrupted run"
    QCheck.(int_range 0 1000)
    crash_parity_once

(* ------------------------------------------------------------------ *)
(* with_seqs                                                            *)
(* ------------------------------------------------------------------ *)

let test_with_seqs_monotone () =
  let ds = Datagen.Person.quick ~seed:11 ~n_entities:3 ~size:4 () in
  let log = Datagen.Update_log.replay ds in
  let cursors = Hashtbl.create 8 in
  List.iter
    (fun (seq, ev) ->
      match (seq, ev) with
      | None, Datagen.Update_log.Resolve _ -> ()
      | None, _ -> Alcotest.fail "mutating event without a seq"
      | Some _, Datagen.Update_log.Resolve _ -> Alcotest.fail "read with a seq"
      | Some s, (Datagen.Update_log.Arrival { label; _ } | Datagen.Update_log.Assert_order { label; _ }) ->
          let prev =
            Option.value ~default:Datagen.Update_log.open_seq
              (Hashtbl.find_opt cursors label)
          in
          Alcotest.(check int) ("monotone for " ^ label) (prev + 1) s;
          Hashtbl.replace cursors label s)
    (Datagen.Update_log.with_seqs log);
  Alcotest.(check int) "every entity stamped" (List.length (Datagen.Update_log.labels log))
    (Hashtbl.length cursors)

(* ------------------------------------------------------------------ *)
(* Protocol: @seq prefix, SHUTDOWN drain, overload reply                *)
(* ------------------------------------------------------------------ *)

let test_protocol_extensions () =
  (match P.parse "@7 INGEST e|a,b" with
  | Ok { P.seq = Some 7; cmd = P.Ingest { label = "e"; row = [ "a"; "b" ] } } -> ()
  | _ -> Alcotest.fail "@seq INGEST did not parse");
  Alcotest.(check bool) "@seq on a read rejected" true
    (Result.is_error (P.parse "@7 RESOLVE e"));
  (match P.parse "SHUTDOWN drain" with
  | Ok { P.cmd = P.Shutdown { drain = true }; _ } -> ()
  | _ -> Alcotest.fail "SHUTDOWN drain did not parse");
  (match P.parse "SHUTDOWN" with
  | Ok { P.cmd = P.Shutdown { drain = false }; _ } -> ()
  | _ -> Alcotest.fail "plain SHUTDOWN did not parse");
  (match (P.parse "HEALTH", P.parse "READY") with
  | Ok { P.cmd = P.Health; _ }, Ok { P.cmd = P.Ready; _ } -> ()
  | _ -> Alcotest.fail "HEALTH/READY did not parse");
  Alcotest.(check bool) "overloaded detected" true (P.is_overloaded P.overloaded);
  Alcotest.(check bool) "ordinary errors are not overloads" false
    (P.is_overloaded (P.error "no such label"))

let test_health_and_ready_verbs () =
  let d = fresh_daemon () in
  let health = req d "HEALTH" in
  expect_ok health;
  Alcotest.(check bool) "non-durable daemon says so" true
    (contains ~needle:{|"enabled":false|} health);
  Alcotest.(check bool) "serving" true (contains ~needle:{|"status":"serving"|} health);
  let ready = req d "READY" in
  expect_ok ready;
  Alcotest.(check bool) "ready" true (contains ~needle:{|"ready":true|} ready)

(* ------------------------------------------------------------------ *)
(* Sockets: drain, idle reaping, the retrying client                    *)
(* ------------------------------------------------------------------ *)

let fresh_socket () =
  incr dir_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "crdur-%d-%d.sock" (Unix.getpid ()) !dir_counter)

let await_socket path =
  let rec go n =
    if n = 0 then Alcotest.fail "daemon socket never appeared"
    else if Sys.file_exists path then ()
    else (
      Thread.delay 0.02;
      go (n - 1))
  in
  go 250

let test_drain_over_socket () =
  with_dir (fun dir ->
      let socket_path = fresh_socket () in
      let d = fresh_daemon ~config:(durable_config dir) () in
      let server =
        Thread.create (fun () -> D.serve d ~drain_wait:5. ~socket_path) ()
      in
      await_socket socket_path;
      let responses = D.request_many ~socket_path (george_lines @ [ "RESOLVE g" ]) in
      List.iter expect_ok responses;
      let expected = resolve_core (List.nth responses (List.length responses - 1)) in
      expect_ok (D.request ~socket_path "SHUTDOWN drain");
      Thread.join server;
      Alcotest.(check bool) "socket removed" false (Sys.file_exists socket_path);
      Alcotest.(check bool) "drain snapshotted" true (Snap.indices ~dir <> []);
      (* restart: the drain snapshot alone carries the state *)
      let recovered = fresh_daemon ~config:(durable_config dir) () in
      let health = req recovered "HEALTH" in
      Alcotest.(check bool) "snapshot loaded" true
        (contains ~needle:{|"snapshot_loaded":true|} health);
      Alcotest.(check string) "parity after drain + restart" expected
        (resolve_core (req recovered "RESOLVE g")))

let test_idle_connection_reaped () =
  let socket_path = fresh_socket () in
  let config = Cr.Config.(default |> with_idle_timeout (Some 0.25)) in
  let d = fresh_daemon ~config () in
  let server = Thread.create (fun () -> D.serve d ~socket_path) () in
  await_socket socket_path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket_path);
  let buf = Bytes.create 1024 in
  ignore (Unix.write fd (Bytes.of_string "PING\n") 0 5);
  ignore (Unix.read fd buf 0 1024);
  (* now go quiet: the daemon must close the connection, not leak it *)
  let eof =
    match Unix.select [ fd ] [] [] 5.0 with
    | [], _, _ -> false
    | _ -> Unix.read fd buf 0 1024 = 0
  in
  Alcotest.(check bool) "idle connection closed by daemon" true eof;
  Unix.close fd;
  let stats = D.request ~socket_path "STATS" in
  Alcotest.(check bool) "reap counted" true
    (contains ~needle:{|"idle_closed":1|} stats);
  expect_ok (D.request ~socket_path "SHUTDOWN");
  Thread.join server

let test_client_retries_through_restart () =
  let socket_path = fresh_socket () in
  let d = fresh_daemon () in
  (* the daemon comes up late: the client's first attempts are refused *)
  let server =
    Thread.create
      (fun () ->
        Thread.delay 0.3;
        D.serve d ~socket_path)
      ()
  in
  let c =
    Crserver.Client.connect ~retries:12 ~retry_base_ms:25. ~deadline:5. ~socket_path ()
  in
  (match Crserver.Client.request c "PING" with
  | Ok r -> expect_ok r
  | Error m -> Alcotest.fail ("client gave up: " ^ m));
  Alcotest.(check bool) "transients were absorbed" true
    (Crserver.Client.retries_used c > 0);
  (* protocol-level errors are answers, not failures: no retry burn *)
  let burnt = Crserver.Client.retries_used c in
  (match Crserver.Client.request c "RESOLVE never-opened" with
  | Ok r -> Alcotest.(check bool) "error answer" true (contains ~needle:{|"ok":false|} r)
  | Error m -> Alcotest.fail m);
  Alcotest.(check int) "no retries on an error answer" burnt
    (Crserver.Client.retries_used c);
  (match Crserver.Client.request c "SHUTDOWN" with
  | Ok r -> expect_ok r
  | Error m -> Alcotest.fail m);
  Crserver.Client.close c;
  Thread.join server

let () =
  Alcotest.run "durable"
    [
      ( "wal",
        [
          Alcotest.test_case "record line round trip" `Quick test_record_line_roundtrip;
          Alcotest.test_case "fsync policy names" `Quick test_fsync_of_string;
          Alcotest.test_case "empty log" `Quick test_empty_log;
          Alcotest.test_case "round trip + torn tail" `Quick test_wal_roundtrip_and_torn_tail;
          Alcotest.test_case "corrupt record stops replay" `Quick
            test_wal_corrupt_record_stops_replay;
          Alcotest.test_case "rotation + compaction" `Quick test_wal_rotation_and_compaction;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "lossless round trip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "corrupt newest falls back" `Quick
            test_snapshot_corrupt_falls_back;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "parity at every kill point" `Quick
            test_recovery_every_kill_point;
          Alcotest.test_case "torn tail mid-stream" `Quick test_recovery_torn_tail_mid_stream;
          Alcotest.test_case "duplicate delivery coalesces" `Quick
            test_duplicate_delivery_coalesces;
          Alcotest.test_case "snapshot with no tail" `Quick test_snapshot_with_no_tail;
          Alcotest.test_case "rejected events skipped" `Quick
            test_recovery_skips_rejected_events;
          QCheck_alcotest.to_alcotest prop_crash_recovery_parity;
        ] );
      ( "datagen",
        [ Alcotest.test_case "with_seqs monotone per entity" `Quick test_with_seqs_monotone ] );
      ( "protocol",
        [
          Alcotest.test_case "seq prefix, drain, overload" `Quick test_protocol_extensions;
          Alcotest.test_case "HEALTH and READY" `Quick test_health_and_ready_verbs;
        ] );
      ( "sockets",
        [
          Alcotest.test_case "graceful drain" `Quick test_drain_over_socket;
          Alcotest.test_case "idle connection reaped" `Quick test_idle_connection_reaped;
          Alcotest.test_case "client retries through restart" `Quick
            test_client_retries_through_restart;
        ] );
    ]
